package core

import (
	"context"
	"fmt"
	"math"
)

// Solver is the shared entry point for whole solves: cold solves
// (Allocator.RunWithScratch), warm-start incremental re-solves
// (WarmSolver), and any future strategy plug into batch machinery — a
// catalog sweep, a grid search — through this one signature. init is the
// starting allocation (its group sums define the conserved totals) and s
// supplies every buffer, so steady-state calls allocate nothing. The
// returned Result.X aliases s and is overwritten by the next solve using
// the same scratch.
type Solver interface {
	Solve(ctx context.Context, init []float64, s *Scratch) (Result, error)
}

// Solve implements Solver by running a full cold solve; it is
// RunWithScratch under the interface's name.
func (a *Allocator) Solve(ctx context.Context, init []float64, s *Scratch) (Result, error) {
	return a.RunWithScratch(ctx, init, s)
}

var (
	_ Solver = (*Allocator)(nil)
	_ Solver = (*WarmSolver)(nil)
)

// WarmConfig tunes a WarmSolver.
type WarmConfig struct {
	// MaxSteps is the incremental-step budget before the solver falls
	// back to a full cold solve (default 16). A warm start near the old
	// optimum normally converges in a handful of steps; exhausting the
	// budget means the problem moved too far for incremental repair.
	MaxSteps int
	// Certify, when non-nil, is consulted once the internal criterion
	// (marginal-utility spread below ε plus the boundary KKT check)
	// holds: it receives the candidate allocation and the common
	// marginal *cost* level q implied by the final planned step, and a
	// non-nil error vetoes the early exit, sending the solve to the
	// cold fallback. Wiring costmodel.VerifyKKT here makes every warm
	// exit carry an independent optimality certificate. The hook is
	// only invoked for single-group problems; grouped objectives skip
	// certification (q is per-group there).
	Certify func(x []float64, q float64) error
}

// WarmSolver re-solves a problem whose parameters drifted slightly, seeded
// from the previous allocation: instead of iterating from a cold start it
// takes a few gradient re-allocation steps (the same PlanStepInto the cold
// path uses, at the Allocator's α — dynamic if configured) and exits as
// soon as the convergence criterion and the optional certificate hold.
// If the budget runs out — the drift was too large for incremental repair
// — it falls back to a full cold solve continued from the current iterate,
// so the result is always a converged allocation when the underlying
// Allocator converges.
//
// A WarmSolver is stateless between calls and safe for concurrent use as
// long as each call gets its own Scratch (the same contract as
// RunWithScratch).
type WarmSolver struct {
	cold     *Allocator
	maxSteps int
	certify  func(x []float64, q float64) error
}

// NewWarmSolver wraps an Allocator with the warm-start strategy.
func NewWarmSolver(cold *Allocator, cfg WarmConfig) (*WarmSolver, error) {
	if cold == nil {
		return nil, fmt.Errorf("%w: nil cold allocator", ErrBadConfig)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 16
	}
	if cfg.MaxSteps < 1 {
		return nil, fmt.Errorf("%w: warm step budget = %d", ErrBadConfig, cfg.MaxSteps)
	}
	return &WarmSolver{cold: cold, maxSteps: cfg.MaxSteps, certify: cfg.Certify}, nil
}

// Solve implements Solver.
func (w *WarmSolver) Solve(ctx context.Context, init []float64, s *Scratch) (Result, error) {
	res, _, err := w.SolveWarm(ctx, init, s)
	return res, err
}

// SolveWarm is Solve additionally reporting whether the incremental
// budget was exhausted and the full cold fallback ran (callers batching
// many objects count warm hits vs. fallbacks from it).
func (w *WarmSolver) SolveWarm(ctx context.Context, init []float64, s *Scratch) (Result, bool, error) {
	a := w.cold
	if s == nil {
		s = &Scratch{}
	}
	totals := growFloats(s.totals, len(a.groups))
	s.totals = totals
	for gi, g := range a.groups {
		totals[gi] = 0
		for _, idx := range g {
			if idx < len(init) {
				totals[gi] += init[idx]
			}
		}
	}
	if err := a.CheckFeasible(init, totals); err != nil {
		return Result{}, false, err
	}
	x := growFloats(s.x, len(init))
	s.x = x
	copy(x, init)
	grad := growFloats(s.grad, len(x))
	s.grad = grad
	if cap(s.steps) < len(a.groups) {
		steps := make([]Step, len(a.groups))
		copy(steps, s.steps)
		s.steps = steps
	} else {
		s.steps = s.steps[:len(a.groups)]
	}
	if a.dynamicSafety > 0 {
		s.hess = growFloats(s.hess, len(x))
		s.xPrev = growFloats(s.xPrev, len(x))
	}

	u, err := a.obj.Utility(x)
	if err != nil {
		return Result{}, false, fmt.Errorf("core: warm utility: %w", err)
	}
	for k := 0; k < w.maxSteps; k++ {
		if err := ctx.Err(); err != nil {
			return Result{X: x, Utility: u, Iterations: k, Reason: StopCanceled}, false, nil
		}
		next, converged, stalled, err := w.incrementalStep(s, u)
		if err != nil {
			return Result{}, false, fmt.Errorf("core: warm step %d: %w", k+1, err)
		}
		u = next
		if stalled {
			break // no stepsize makes progress here: escalate
		}
		if !converged {
			continue
		}
		if w.certify != nil && len(a.groups) == 1 {
			// AvgMarginal is the active set's mean marginal utility;
			// the section-5.3 price is the marginal cost, its negation.
			if err := w.certify(x, -s.steps[0].AvgMarginal); err != nil {
				break // uncertified: escalate to the cold fallback
			}
		}
		return Result{X: x, Utility: u, Iterations: k, Reason: StopConverged, Converged: true}, false, nil
	}
	// The drift outran the incremental budget (or the certificate was
	// vetoed): continue as a full cold solve from the current iterate.
	// x aliases s.x, which RunWithScratch re-adopts in place.
	res, err := a.RunWithScratch(ctx, x, s)
	return res, true, err
}

// incrementalStep performs one warm re-allocation step over s: gradient,
// per-group step planning at the Allocator's (possibly dynamic) stepsize,
// and the convergence test — spread below ε and the boundary KKT
// condition on every group. When the test fails the planned step is
// applied; when it holds, x is left untouched and the step records each
// group's active-set average marginal for certification. prevU is the
// utility of the current iterate; the returned utility describes the
// (possibly stepped) iterate.
//
// Like the cold loop, a dynamically sized step that lowers the utility
// backtracks — halving α, replanning from the saved iterate — until it
// is an ascent again; stalled reports that no representable stepsize
// made progress, in which case x holds the last good iterate.
//
//fap:zeroalloc
func (w *WarmSolver) incrementalStep(s *Scratch, prevU float64) (u float64, converged, stalled bool, err error) {
	a := w.cold
	x, grad := s.x, s.grad
	if err := a.obj.Gradient(grad, x); err != nil {
		return prevU, false, false, err
	}
	alpha := a.alpha
	if a.dynamicSafety > 0 {
		dyn, err := a.dynamicAlpha(x, grad, s.hess)
		if err != nil {
			return prevU, false, false, err
		}
		if dyn > 0 {
			alpha = dyn
		}
	}
	converged = true
	for gi, g := range a.groups {
		if err := PlanStepInto(&s.steps[gi], x, grad, g, alpha); err != nil {
			return prevU, false, false, err
		}
		if s.steps[gi].Spread(grad, g) >= a.epsilon {
			converged = false
		} else if !kktHolds(s.steps[gi], grad, x, g, a.epsilon) {
			converged = false
		}
	}
	if converged {
		return prevU, true, false, nil
	}
	if a.dynamicSafety > 0 {
		copy(s.xPrev, x)
	}
	for gi, g := range a.groups {
		if err := s.steps[gi].Apply(x, g); err != nil {
			return prevU, false, false, err
		}
	}
	if u, err = a.obj.Utility(x); err != nil {
		if a.dynamicSafety == 0 {
			return prevU, false, false, err
		}
		// The step left the iterate outside the model's domain (an
		// unstable queue has infinite cost): treat it as a utility of
		// -Inf so the backtracking guard below recovers from xPrev,
		// mirroring the cold loop.
		u = math.Inf(-1)
	}
	if a.dynamicSafety > 0 && u < prevU {
		// Theorem-2 backtracking guard, mirroring the cold loop: the
		// dynamic bound is evaluated at the pre-step point, so a large
		// move can overshoot its validity region and lower U.
		for try := 0; try < 48 && u < prevU; try++ {
			alpha /= 2
			copy(x, s.xPrev)
			for gi, g := range a.groups {
				if err := PlanStepInto(&s.steps[gi], x, grad, g, alpha); err != nil {
					return prevU, false, false, err
				}
				if err := s.steps[gi].Apply(x, g); err != nil {
					return prevU, false, false, err
				}
			}
			if u, err = a.obj.Utility(x); err != nil {
				u = math.Inf(-1) // still outside the domain: keep halving
			}
		}
		if u < prevU {
			copy(x, s.xPrev)
			return prevU, false, true, nil
		}
	}
	return u, false, false, nil
}
