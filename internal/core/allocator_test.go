package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// quadObjective is a simple separable concave test utility
// U(x) = −Σ w_i (x_i − t_i)², whose unconstrained optimum is x = t.
type quadObjective struct {
	weights []float64
	targets []float64
	groups  [][]int
	gradErr error
}

func (q *quadObjective) Dim() int { return len(q.weights) }

func (q *quadObjective) Utility(x []float64) (float64, error) {
	var u float64
	for i, w := range q.weights {
		d := x[i] - q.targets[i]
		u -= w * d * d
	}
	return u, nil
}

func (q *quadObjective) Gradient(grad, x []float64) error {
	if q.gradErr != nil {
		return q.gradErr
	}
	for i, w := range q.weights {
		grad[i] = -2 * w * (x[i] - q.targets[i])
	}
	return nil
}

func (q *quadObjective) SecondDerivative(hess, x []float64) error {
	for i, w := range q.weights {
		hess[i] = -2 * w
	}
	return nil
}

func (q *quadObjective) Groups() [][]int {
	if q.groups == nil {
		return nil
	}
	return q.groups
}

func uniformQuad(n int) *quadObjective {
	q := &quadObjective{weights: make([]float64, n), targets: make([]float64, n)}
	for i := range q.weights {
		q.weights[i] = 1
		q.targets[i] = 0.1 * float64(i+1)
	}
	return q
}

func TestAllocatorConvergesToInteriorOptimum(t *testing.T) {
	// Equal weights: the constrained optimum equalizes gradients,
	// x_i = t_i + c with c chosen so Σx = 1.
	q := uniformQuad(4) // targets 0.1..0.4, sum 1.0 → optimum exactly t
	alloc, err := NewAllocator(q, WithAlpha(0.2), WithEpsilon(1e-9))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i, want := range q.targets {
		if math.Abs(res.X[i]-want) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, res.X[i], want)
		}
	}
}

func TestAllocatorMonotoneUtility(t *testing.T) {
	q := uniformQuad(5)
	var utilities []float64
	alloc, err := NewAllocator(q,
		WithAlpha(0.1),
		WithEpsilon(1e-8),
		WithTrace(func(it Iteration) { utilities = append(utilities, it.Utility) }),
	)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	if _, err := alloc.Run(context.Background(), []float64{1, 0, 0, 0, 0}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(utilities) < 3 {
		t.Fatalf("trace too short: %d entries", len(utilities))
	}
	for i := 1; i < len(utilities); i++ {
		if utilities[i] < utilities[i-1]-1e-12 {
			t.Errorf("utility decreased at iteration %d: %g -> %g", i, utilities[i-1], utilities[i])
		}
	}
}

func TestAllocatorRespectsGroups(t *testing.T) {
	// Two independent constraint groups; each must conserve its own
	// total (0.6 and 0.4 here).
	q := uniformQuad(4)
	q.groups = [][]int{{0, 1}, {2, 3}}
	alloc, err := NewAllocator(q, WithAlpha(0.2), WithEpsilon(1e-10))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	init := []float64{0.6, 0.0, 0.0, 0.4}
	res, err := alloc.Run(context.Background(), init)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.X[0] + res.X[1]; math.Abs(got-0.6) > 1e-9 {
		t.Errorf("group 0 total = %g, want 0.6", got)
	}
	if got := res.X[2] + res.X[3]; math.Abs(got-0.4) > 1e-9 {
		t.Errorf("group 1 total = %g, want 0.4", got)
	}
}

func TestAllocatorInfeasibleStart(t *testing.T) {
	q := uniformQuad(3)
	alloc, err := NewAllocator(q)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.5, -0.1, 0.6}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative start: error = %v, want ErrInfeasible", err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.5, 0.5}); !errors.Is(err, ErrDimension) {
		t.Errorf("short start: error = %v, want ErrDimension", err)
	}
}

func TestAllocatorGradientErrorPropagates(t *testing.T) {
	q := uniformQuad(3)
	q.gradErr = fmt.Errorf("synthetic: %w", ErrUnstable)
	alloc, err := NewAllocator(q)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.4, 0.3, 0.3}); !errors.Is(err, ErrUnstable) {
		t.Errorf("error = %v, want wrapped ErrUnstable", err)
	}
}

func TestAllocatorMaxIterations(t *testing.T) {
	q := uniformQuad(4)
	alloc, err := NewAllocator(q, WithAlpha(0.001), WithEpsilon(1e-12), WithMaxIterations(5))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reason != StopMaxIterations || res.Iterations != 5 {
		t.Errorf("got %v after %d iterations, want max-iterations after 5", res.Reason, res.Iterations)
	}
	// Premature termination still yields a feasible allocation (the
	// paper's background-execution property).
	if got := sum(res.X); math.Abs(got-1) > 1e-9 {
		t.Errorf("premature allocation sums to %g, want 1", got)
	}
}

func TestAllocatorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := uniformQuad(4)
	alloc, err := NewAllocator(q)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(ctx, []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reason != StopCanceled {
		t.Errorf("reason = %v, want canceled", res.Reason)
	}
}

func TestAllocatorDynamicAlpha(t *testing.T) {
	q := uniformQuad(4)
	alloc, err := NewAllocator(q, WithEpsilon(1e-8), WithDynamicAlpha(0.5))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("dynamic alpha did not converge: %+v", res)
	}
	// For the quadratic with equal weights, the Theorem-2 expression is
	// 2Σd²/|Σh d²| = 2/(2w) = 1/w = 1; safety 0.5 halves it. The solver
	// must converge quickly with that stepsize.
	if res.Iterations > 100 {
		t.Errorf("dynamic alpha took %d iterations", res.Iterations)
	}
}

func TestAllocatorAdaptiveAlphaStopsOnCostDelta(t *testing.T) {
	q := uniformQuad(4)
	alloc, err := NewAllocator(q,
		WithAlpha(0.3),
		WithEpsilon(1e-300), // unreachable: force the cost-delta rule to fire
		WithAdaptiveAlpha(AdaptAlphaConfig{Patience: 2, Factor: 0.5, MinAlpha: 1e-6, CostDelta: 1e-12}),
		WithMaxIterations(100000),
	)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reason != StopCostDelta {
		t.Errorf("reason = %v, want cost-delta", res.Reason)
	}
}

func TestAllocatorKKTCheck(t *testing.T) {
	// Weighted quadratic whose optimum pins one variable to zero:
	// target -0.5 for variable 0 pulls it negative, so the constrained
	// optimum has x_0 = 0.
	q := &quadObjective{
		weights: []float64{1, 1, 1},
		targets: []float64{-0.5, 0.7, 0.8},
	}
	alloc, err := NewAllocator(q, WithAlpha(0.2), WithEpsilon(1e-9), WithKKTCheck())
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.X[0] > 1e-9 {
		t.Errorf("x[0] = %g, want 0 (boundary optimum)", res.X[0])
	}
	// Interior variables share resource 1 equally offset from targets:
	// x_1 − 0.7 = x_2 − 0.8 with x_1 + x_2 = 1 → x = (0.45, 0.55).
	if math.Abs(res.X[1]-0.45) > 1e-6 || math.Abs(res.X[2]-0.55) > 1e-6 {
		t.Errorf("interior allocation = %v, want (0, 0.45, 0.55)", res.X)
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	q := uniformQuad(3)
	tests := []struct {
		name string
		obj  Objective
		opts []Option
	}{
		{"nil objective", nil, nil},
		{"negative alpha", q, []Option{WithAlpha(-1)}},
		{"zero epsilon", q, []Option{WithEpsilon(0)}},
		{"zero iterations", q, []Option{WithMaxIterations(0)}},
		{"bad safety", q, []Option{WithDynamicAlpha(2)}},
		{"bad adapt factor", q, []Option{WithAdaptiveAlpha(AdaptAlphaConfig{Patience: 1, Factor: 1.5})}},
		{"bad adapt patience", q, []Option{WithAdaptiveAlpha(AdaptAlphaConfig{Patience: 0, Factor: 0.5})}},
		{"dynamic alpha without curvature", &noCurvature{}, []Option{WithDynamicAlpha(0.5)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewAllocator(tt.obj, tt.opts...); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

// noCurvature is an Objective that does not implement Curvature.
type noCurvature struct{}

func (*noCurvature) Dim() int                             { return 2 }
func (*noCurvature) Utility(x []float64) (float64, error) { return 0, nil }
func (*noCurvature) Gradient(grad, x []float64) error     { return nil }

type badGroups struct {
	*quadObjective
	groups [][]int
}

func (b *badGroups) Groups() [][]int { return b.groups }

func TestGroupValidation(t *testing.T) {
	tests := []struct {
		name   string
		groups [][]int
	}{
		{"empty group", [][]int{{0, 1}, {}, {2}}},
		{"duplicate variable", [][]int{{0, 1}, {1, 2}}},
		{"uncovered variable", [][]int{{0, 1}}},
		{"out of range", [][]int{{0, 1, 7}, {2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			obj := &badGroups{quadObjective: uniformQuad(3), groups: tt.groups}
			if _, err := NewAllocator(obj); err == nil {
				t.Error("expected validation error, got nil")
			}
		})
	}
}

func TestStopReasonStrings(t *testing.T) {
	tests := []struct {
		r    StopReason
		want string
	}{
		{StopConverged, "converged"},
		{StopMaxIterations, "max-iterations"},
		{StopStalled, "stalled"},
		{StopCostDelta, "cost-delta"},
		{StopCanceled, "canceled"},
		{StopReason(99), "StopReason(99)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

// TestAllocatorRandomProblemsReachKKT verifies on random separable
// quadratics that the algorithm's fixed point satisfies the optimality
// conditions of section 5.3: equal gradients on the support, no better
// gradient off the support.
func TestAllocatorRandomProblemsReachKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		q := &quadObjective{weights: make([]float64, n), targets: make([]float64, n)}
		for i := 0; i < n; i++ {
			q.weights[i] = 0.5 + rng.Float64()*4
			q.targets[i] = rng.Float64()*1.4 - 0.4 // may force boundary optima
		}
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64()
		}
		total := sum(init)
		for i := range init {
			init[i] /= total
		}
		alloc, err := NewAllocator(q, WithAlpha(0.05), WithEpsilon(1e-9), WithKKTCheck(), WithMaxIterations(200000))
		if err != nil {
			t.Fatalf("trial %d: NewAllocator: %v", trial, err)
		}
		res, err := alloc.Run(context.Background(), init)
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: stopped with %v after %d iterations", trial, res.Reason, res.Iterations)
		}
		grad := make([]float64, n)
		if err := q.Gradient(grad, res.X); err != nil {
			t.Fatal(err)
		}
		// Reference multiplier: max gradient over the support.
		qStar := math.Inf(-1)
		for i, xi := range res.X {
			if xi > 1e-9 && grad[i] > qStar {
				qStar = grad[i]
			}
		}
		for i, xi := range res.X {
			if xi > 1e-9 {
				if math.Abs(grad[i]-qStar) > 1e-6 {
					t.Errorf("trial %d: support gradient %d = %g, want %g", trial, i, grad[i], qStar)
				}
			} else if grad[i] > qStar+1e-6 {
				t.Errorf("trial %d: boundary variable %d has gradient %g > q %g", trial, i, grad[i], qStar)
			}
		}
	}
}
