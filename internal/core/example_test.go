package core_test

import (
	"context"
	"fmt"
	"log"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

// ExampleAllocator runs the paper's algorithm on the figure-3 system with
// α = 0.3, reproducing its ~10-iteration convergence to the uniform
// optimum.
func ExampleAllocator() {
	// 4 nodes with equal access costs C_i = 2 (the unit ring), μ = 1.5,
	// λ = 1, k = 1.
	model, err := costmodel.NewSingleFile([]float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := core.NewAllocator(model,
		core.WithAlpha(0.3),
		core.WithEpsilon(1e-3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.8, 0.1, 0.1, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d iterations to %.2f (cost %.2f)\n",
		res.Iterations, res.X, -res.Utility)
	// Output:
	// converged after 9 iterations to [0.25 0.25 0.25 0.25] (cost 2.80)
}

// ExamplePlanStep shows one raw re-allocation step: resource flows from
// below-average to above-average marginal utility, zero-sum.
func ExamplePlanStep() {
	x := []float64{0.5, 0.3, 0.2}
	grad := []float64{-3, -2, -1} // variable 2 is most valuable
	step, err := core.PlanStep(x, grad, []int{0, 1, 2}, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deltas: %.2f\n", step.Delta)
	// Output:
	// deltas: [-0.10 0.00 0.10]
}
