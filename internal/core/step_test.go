package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestPlanStepPreservesFeasibility(t *testing.T) {
	// Theorem 1: deltas sum to zero, so group totals are conserved.
	tests := []struct {
		name  string
		x     []float64
		grad  []float64
		alpha float64
	}{
		{"interior", []float64{0.4, 0.3, 0.3}, []float64{-1, -2, -3}, 0.05},
		{"boundary", []float64{1, 0, 0}, []float64{-5, -1, -2}, 0.1},
		{"uniform gradient", []float64{0.5, 0.25, 0.25}, []float64{-2, -2, -2}, 0.5},
		{"huge step", []float64{0.8, 0.1, 0.1}, []float64{-9, -1, -1}, 10},
		{"two vars", []float64{0.7, 0.3}, []float64{-3, -1}, 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st, err := PlanStep(tt.x, tt.grad, seq(len(tt.x)), tt.alpha)
			if err != nil {
				t.Fatalf("PlanStep: %v", err)
			}
			if got := sum(st.Delta); math.Abs(got) > 1e-12 {
				t.Errorf("deltas sum to %g, want 0", got)
			}
			x := append([]float64(nil), tt.x...)
			if err := st.Apply(x, seq(len(tt.x))); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got, want := sum(x), sum(tt.x); math.Abs(got-want) > 1e-9 {
				t.Errorf("total after step = %g, want %g", got, want)
			}
			for i, xi := range x {
				if xi < 0 {
					t.Errorf("x[%d] = %g went negative", i, xi)
				}
			}
		})
	}
}

func TestPlanStepDirection(t *testing.T) {
	// Resource moves toward above-average marginal utility.
	x := []float64{0.25, 0.25, 0.25, 0.25}
	grad := []float64{-1, -2, -3, -4} // variable 0 most valuable
	st, err := PlanStep(x, grad, seq(4), 0.01)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if st.Delta[0] <= 0 {
		t.Errorf("Delta[0] = %g, want positive (above-average marginal utility)", st.Delta[0])
	}
	if st.Delta[3] >= 0 {
		t.Errorf("Delta[3] = %g, want negative (below-average marginal utility)", st.Delta[3])
	}
	// The update is exactly α(g_i − ḡ) when no clamping occurs.
	avg := -2.5
	for i, d := range st.Delta {
		want := 0.01 * (grad[i] - avg)
		if math.Abs(d-want) > 1e-15 {
			t.Errorf("Delta[%d] = %g, want %g", i, d, want)
		}
	}
}

func TestPlanStepExcludesShrinkingBoundaryVariable(t *testing.T) {
	// A variable at zero with below-average marginal utility must be
	// excluded (paper step i) and stay at zero.
	x := []float64{0.5, 0.5, 0}
	grad := []float64{-1, -1, -10}
	st, err := PlanStep(x, grad, seq(3), 0.1)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if st.Active[2] {
		t.Error("boundary variable with below-average utility still active")
	}
	if st.Delta[2] != 0 {
		t.Errorf("Delta[2] = %g, want 0", st.Delta[2])
	}
	// The remaining two have equal marginal utilities: no movement.
	if !st.IsNoOp() {
		t.Errorf("expected no-op step, got deltas %v", st.Delta)
	}
}

func TestPlanStepReadmitsValuableBoundaryVariable(t *testing.T) {
	// Paper step (iv): an excluded variable whose marginal utility
	// exceeds the active-set average must be re-admitted. Here variable 2
	// is at zero but is the most valuable, so it must receive resource.
	x := []float64{0.5, 0.5, 0}
	grad := []float64{-3, -2, -1}
	st, err := PlanStep(x, grad, seq(3), 0.05)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if !st.Active[2] {
		t.Error("most valuable boundary variable not in active set")
	}
	if st.Delta[2] <= 0 {
		t.Errorf("Delta[2] = %g, want positive", st.Delta[2])
	}
}

func TestPlanStepRatioTest(t *testing.T) {
	// The paper's α=0.67 scenario: the raw step would drive variable 0
	// (allocation 0.8) to −0.37. The ratio test must scale the step so it
	// lands exactly at zero instead of freezing it at 0.8.
	x := []float64{0.8, 0.1, 0.1, 0}
	grad := []float64{-5.0612, -2.7653, -2.7653, -2.6667}
	st, err := PlanStep(x, grad, seq(4), 0.67)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if st.Truncation >= 1 {
		t.Fatalf("Truncation = %g, want < 1", st.Truncation)
	}
	if got := x[0] + st.Delta[0]; math.Abs(got) > 1e-12 {
		t.Errorf("binding variable lands at %g, want 0", got)
	}
	if math.Abs(sum(st.Delta)) > 1e-12 {
		t.Errorf("truncated deltas sum to %g, want 0", sum(st.Delta))
	}
	// Ascent is preserved: ⟨grad, Δ⟩ > 0.
	var dot float64
	for i, d := range st.Delta {
		dot += grad[i] * d
	}
	if dot <= 0 {
		t.Errorf("⟨grad, Δ⟩ = %g, want positive", dot)
	}
}

func TestPlanStepSubgroup(t *testing.T) {
	// Only the group's variables move; outsiders keep zero delta
	// implicitly (they are simply not part of the step).
	x := []float64{0.5, 0.5, 0.9, 0.1}
	grad := []float64{-1, -2, -100, -200}
	group := []int{0, 1}
	st, err := PlanStep(x, grad, group, 0.1)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if len(st.Delta) != 2 {
		t.Fatalf("delta length = %d, want 2", len(st.Delta))
	}
	if err := st.Apply(x, group); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if x[2] != 0.9 || x[3] != 0.1 {
		t.Errorf("outside variables moved: %v", x)
	}
	if math.Abs(x[0]+x[1]-1) > 1e-12 {
		t.Errorf("group total = %g, want 1", x[0]+x[1])
	}
}

func TestPlanStepAllAtBoundary(t *testing.T) {
	// Pathological: every variable at zero and wanting to shrink except
	// one. The active set collapses; the step must be a harmless no-op.
	x := []float64{1, 0, 0}
	grad := []float64{-1, -5, -7}
	st, err := PlanStep(x, grad, seq(3), 0.1)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	if !st.IsNoOp() {
		t.Errorf("expected no-op, got %v", st.Delta)
	}
}

func TestPlanStepErrors(t *testing.T) {
	tests := []struct {
		name  string
		x     []float64
		grad  []float64
		group []int
		alpha float64
		want  error
	}{
		{"dim mismatch", []float64{1}, []float64{1, 2}, []int{0}, 0.1, ErrDimension},
		{"bad alpha zero", []float64{1, 0}, []float64{-1, -2}, []int{0, 1}, 0, ErrBadConfig},
		{"bad alpha nan", []float64{1, 0}, []float64{-1, -2}, []int{0, 1}, math.NaN(), ErrBadConfig},
		{"empty group", []float64{1}, []float64{-1}, nil, 0.1, ErrBadConfig},
		{"index out of range", []float64{1, 0}, []float64{-1, -2}, []int{0, 5}, 0.1, ErrDimension},
		{"nan gradient", []float64{0.5, 0.5}, []float64{math.NaN(), -1}, []int{0, 1}, 0.1, ErrDiverged},
		{"inf gradient", []float64{0.5, 0.5}, []float64{math.Inf(1), -1}, []int{0, 1}, 0.1, ErrDiverged},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := PlanStep(tt.x, tt.grad, tt.group, tt.alpha)
			if !errors.Is(err, tt.want) {
				t.Errorf("PlanStep error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestApplyErrors(t *testing.T) {
	st := Step{Delta: []float64{0.1, -0.1}}
	if err := st.Apply([]float64{0.5, 0.5}, []int{0}); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched group: error = %v, want ErrDimension", err)
	}
	if err := st.Apply([]float64{0.5, 0.5}, []int{0, 9}); !errors.Is(err, ErrDimension) {
		t.Errorf("bad index: error = %v, want ErrDimension", err)
	}
}

func TestSpread(t *testing.T) {
	grad := []float64{-1, -4, -2}
	st := Step{Active: []bool{true, false, true}}
	if got := st.Spread(grad, seq(3)); got != 1 {
		t.Errorf("Spread = %g, want 1 (inactive variable ignored)", got)
	}
	if got := GradientSpread(grad, seq(3)); got != 3 {
		t.Errorf("GradientSpread = %g, want 3", got)
	}
	empty := Step{Active: []bool{false, false, false}}
	if got := empty.Spread(grad, seq(3)); got != 0 {
		t.Errorf("Spread over empty active set = %g, want 0", got)
	}
}

// TestPlanStepPropertyFeasibility hammers PlanStep with random instances:
// deltas must sum to zero, allocations must stay non-negative, and the
// planned direction must not decrease the linearized utility.
func TestPlanStepPropertyFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(raw rawInstance) bool {
		x, grad, alpha := raw.normalize(rng)
		st, err := PlanStep(x, grad, seq(len(x)), alpha)
		if err != nil {
			return false
		}
		if math.Abs(sum(st.Delta)) > 1e-9 {
			return false
		}
		var dot float64
		applied := append([]float64(nil), x...)
		if err := st.Apply(applied, seq(len(x))); err != nil {
			return false
		}
		for i, v := range applied {
			if v < 0 {
				return false
			}
			dot += grad[i] * st.Delta[i]
		}
		return dot >= -1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// rawInstance is a quick-generated random allocation problem instance.
type rawInstance struct {
	X     []float64
	Grad  []float64
	Alpha float64
}

// normalize maps arbitrary generated values into a valid instance: a
// feasible allocation (non-negative, sum 1), finite gradients, and a
// positive stepsize.
func (r rawInstance) normalize(rng *rand.Rand) (x, grad []float64, alpha float64) {
	n := len(r.X)
	if n < 2 {
		n = 2 + rng.Intn(6)
	}
	if n > 12 {
		n = 12
	}
	x = make([]float64, n)
	grad = make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		var v float64
		if i < len(r.X) {
			v = math.Abs(r.X[i])
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
			v = rng.Float64()
		}
		// A quarter of variables sit exactly on the boundary.
		if rng.Intn(4) == 0 {
			v = 0
		}
		x[i] = v
		total += v
	}
	if total == 0 {
		x[0] = 1
		total = 1
	}
	for i := range x {
		x[i] /= total
	}
	for i := 0; i < n; i++ {
		var g float64
		if i < len(r.Grad) {
			g = r.Grad[i]
		}
		if math.IsNaN(g) || math.IsInf(g, 0) || math.Abs(g) > 1e6 {
			g = -rng.Float64() * 10
		}
		grad[i] = g
	}
	alpha = math.Abs(r.Alpha)
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha == 0 || alpha > 100 {
		alpha = 0.01 + rng.Float64()
	}
	return x, grad, alpha
}
