package core

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// quad is a strictly concave test objective with per-variable optima,
// evaluated without allocating.
type quad struct{ n int }

func (q quad) Dim() int { return q.n }

func (q quad) Utility(x []float64) (float64, error) {
	var u float64
	for i, xi := range x {
		u += float64(i+1)*xi - float64(q.n)*xi*xi
	}
	return u, nil
}

func (q quad) Gradient(grad, x []float64) error {
	for i, xi := range x {
		grad[i] = float64(i+1) - 2*float64(q.n)*xi
	}
	return nil
}

func (q quad) SecondDerivative(hess, x []float64) error {
	for i := range x {
		hess[i] = -2 * float64(q.n)
	}
	return nil
}

// TestPlanStepIntoAllocFree pins the zero-allocation contract of the
// planning hot path: with caller-owned buffers, PlanStepInto performs no
// heap allocations, in the interior and in the boundary-handling case.
func TestPlanStepIntoAllocFree(t *testing.T) {
	const n = 64
	group := seq(n)
	grad := make([]float64, n)

	interior := make([]float64, n)
	boundary := make([]float64, n)
	boundary[0] = 1
	for i := range interior {
		interior[i] = 1.0 / n
		grad[i] = -float64(i % 7)
	}
	for name, x := range map[string][]float64{"interior": interior, "boundary": boundary} {
		st := Step{Delta: make([]float64, n), Active: make([]bool, n)}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := PlanStepInto(&st, x, grad, group, 0.1); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: PlanStepInto allocated %.1f objects per call, want 0", name, allocs)
		}
	}
}

// TestPlanStepIntoMatchesPlanStep checks the buffer-reusing API plans
// byte-identical steps to PlanStep, including when a Step is reused
// across groups of different sizes.
func TestPlanStepIntoMatchesPlanStep(t *testing.T) {
	cases := []struct {
		x, grad []float64
		alpha   float64
	}{
		{[]float64{0.8, 0.1, 0.1, 0}, []float64{-4, -2, -3, -1}, 0.3},
		{[]float64{0.8, 0.1, 0.1, 0}, []float64{-4, -2, -3, -1}, 0.67},
		{[]float64{1, 0, 0}, []float64{-5, -1, -2}, 0.1},
		{[]float64{0.5, 0.5}, []float64{-1, -1}, 0.2},
		{[]float64{0, 0, 0, 0, 1}, []float64{-1, -2, -3, -4, -5}, 0.05},
	}
	var reused Step
	for ci, tc := range cases {
		want, err := PlanStep(tc.x, tc.grad, seq(len(tc.x)), tc.alpha)
		if err != nil {
			t.Fatalf("case %d: PlanStep: %v", ci, err)
		}
		if err := PlanStepInto(&reused, tc.x, tc.grad, seq(len(tc.x)), tc.alpha); err != nil {
			t.Fatalf("case %d: PlanStepInto: %v", ci, err)
		}
		if !reflect.DeepEqual(want.Delta, reused.Delta) ||
			!reflect.DeepEqual(want.Active, reused.Active) ||
			want.Truncation != reused.Truncation ||
			(want.AvgMarginal != reused.AvgMarginal && !(math.IsNaN(want.AvgMarginal) && math.IsNaN(reused.AvgMarginal))) {
			t.Errorf("case %d: PlanStepInto = %+v, PlanStep = %+v", ci, reused, want)
		}
	}
}

// runAllocs measures the heap allocations of one full Run with the given
// iteration budget.
func runAllocs(t *testing.T, opts []Option, init []float64, obj Objective) float64 {
	t.Helper()
	alloc, err := NewAllocator(obj, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	return testing.AllocsPerRun(10, func() {
		if _, err := alloc.Run(ctx, init); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunInnerLoopAllocFree asserts the allocator's iteration loop does
// not allocate: a run 80× longer must allocate exactly as much as a
// short one (Run's fixed setup — the x copy, gradient, and per-group
// step buffers — is all there is).
func TestRunInnerLoopAllocFree(t *testing.T) {
	obj := quad{n: 16}
	init := make([]float64, 16)
	init[0] = 1

	base := []Option{WithAlpha(0.001), WithEpsilon(1e-12)}
	short := runAllocs(t, append([]Option{WithMaxIterations(5)}, base...), init, obj)
	long := runAllocs(t, append([]Option{WithMaxIterations(400)}, base...), init, obj)
	if short != long {
		t.Errorf("allocations grew with iterations: %.0f for 5 iterations, %.0f for 400 — inner loop allocates", short, long)
	}

	// The dynamic-alpha path reuses its Hessian scratch too.
	dynBase := []Option{WithAlpha(0.0001), WithEpsilon(1e-12), WithDynamicAlpha(0.001)}
	shortDyn := runAllocs(t, append([]Option{WithMaxIterations(5)}, dynBase...), init, obj)
	longDyn := runAllocs(t, append([]Option{WithMaxIterations(400)}, dynBase...), init, obj)
	if shortDyn != longDyn {
		t.Errorf("dynamic-alpha allocations grew with iterations: %.0f for 5, %.0f for 400", shortDyn, longDyn)
	}
}
