package recovery

import (
	"context"
	"testing"

	"filealloc/internal/agent"
	"filealloc/internal/metrics"
	"filealloc/internal/transport"
)

// TestChurnMetricsSurviveRestart is the counter-reset regression test: a
// node that crashes and resumes must report cumulative counts — its
// supervised outcome's MessagesSent must equal the metered transport's
// send counter for that node, which by construction (endpoints are
// wrapped once, outside the restart loop) spans every attempt. Before the
// fix, RunSupervisedAgent kept only the final attempt's outcome, so the
// pre-crash messages vanished from the total.
func TestChurnMetricsSurviveRestart(t *testing.T) {
	m := ringModel(t)
	cfg := churnConfig(t, m)
	reg := metrics.New()
	obs := &agent.CounterObserver{}
	cfg.Observer = obs
	cfg.Metrics = reg
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{{
			Kind: transport.FaultCrash, Direction: transport.DirSend,
			Nodes: []int{2}, FromRound: 5, ToRound: 5,
		}},
	}
	res, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d failed: %v", i, e)
		}
	}
	if got := res.Outcomes[2].Restarts; got != 1 {
		t.Fatalf("node 2 restarts = %d, want 1 (fault rule did not fire)", got)
	}

	snap := reg.Snapshot()
	sends := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Name != "fap_transport_sends_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "node" {
				sends[l.Value] = c.Value
			}
		}
	}
	for i, o := range res.Outcomes {
		node := string(rune('0' + i))
		if sends[node] != int64(o.MessagesSent) {
			t.Errorf("node %d: metered sends = %d but outcome reports %d messages (pre-crash counts dropped?)",
				i, sends[node], o.MessagesSent)
		}
	}
	// The round-5 checkpoint was saved before the crash fired on the
	// round's first send, so the resumed run replays round 5 with no
	// extra traffic: cumulatively the crashed node sends exactly what an
	// uninterrupted node does. A restart-reset count would report only
	// the post-resume rounds and come up short.
	if res.Outcomes[2].MessagesSent != res.Outcomes[0].MessagesSent {
		t.Errorf("crashed node reports %d cumulative messages, survivor %d; counts must match across the crash",
			res.Outcomes[2].MessagesSent, res.Outcomes[0].MessagesSent)
	}
	// Checkpoint saves flow through the observer: node 2 re-saves round 5
	// on resume, so the cluster total exceeds rounds×nodes by at least 1.
	if obs.Counters().CheckpointSaves == 0 {
		t.Error("no checkpoint saves observed")
	}
	// Fault counters are published into the registry after the run.
	var crashes int64
	for _, c := range snap.Counters {
		if c.Name == "fap_transport_faults_total" {
			for _, l := range c.Labels {
				if l.Key == "kind" && l.Value == "crashes" {
					crashes += c.Value
				}
			}
		}
	}
	if crashes != 1 {
		t.Errorf("published crash fault counters sum to %d, want 1", crashes)
	}
}
