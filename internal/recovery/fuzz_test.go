package recovery

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// fuzzSeedCheckpoint builds a small valid, sealed checkpoint.
func fuzzSeedCheckpoint(tb testing.TB) Checkpoint {
	tb.Helper()
	c := Checkpoint{
		Version: Version,
		Node:    1,
		Peers:   4,
		Round:   7,
		X:       0.25,
		FullX:   []float64{0.25, 0.25, 0.25, 0.25},
		Alive:   []bool{true, true, true, true},
		Planned: 0xF,
	}
	if err := c.Seal(); err != nil {
		tb.Fatalf("sealing seed checkpoint: %v", err)
	}
	return c
}

// FuzzCheckpointValidate proves that arbitrary bytes fed to Decode always
// yield a checkpoint that passes validation or an ErrCorrupt-class error
// — never a panic — and that accepted checkpoints survive a re-encode
// round trip.
func FuzzCheckpointValidate(f *testing.F) {
	valid, err := json.Marshal(fuzzSeedCheckpoint(f))
	if err != nil {
		f.Fatalf("encoding seed checkpoint: %v", err)
	}
	f.Add(append(valid, '\n'))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"checksum":"deadbeef"}`))
	f.Add([]byte(`not a checkpoint`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Decode accepted a checkpoint that fails Validate: %v", err)
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to encode: %v", err)
		}
		c2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip changed checkpoint:\nfirst:  %+v\nsecond: %+v", c, c2)
		}
	})
}

// TestDecodeRejectsCorruption pins the non-fuzz corruption cases: the
// decoder classifies every malformed input as ErrCorrupt (I/O errors
// aside) rather than returning garbage state.
func TestDecodeRejectsCorruption(t *testing.T) {
	c := fuzzSeedCheckpoint(t)
	valid, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("Decode rejected a valid checkpoint: %v", err)
	}
	mutated := append([]byte(nil), valid...)
	// Flip a digit inside the x field to break the checksum.
	for i := range mutated {
		if mutated[i] == '2' {
			mutated[i] = '3'
			break
		}
	}
	cases := map[string][]byte{
		"truncated":     valid[:len(valid)-2],
		"flipped byte":  mutated,
		"empty object":  []byte(`{}`),
		"wrong version": []byte(`{"version":99}`),
		"garbage":       []byte(`!!`),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode error = %v, want ErrCorrupt", name, err)
		}
	}
}
