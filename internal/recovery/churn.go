package recovery

import (
	"context"
	"fmt"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/metrics"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// ChurnClusterConfig describes an in-process cluster run under crash
// faults, quorum rounds, and supervised restart — the churn analogue of
// agent.RunCluster.
type ChurnClusterConfig struct {
	// Models holds one LocalModel per node.
	Models []agent.LocalModel
	// Init is the initial (feasible) allocation.
	Init []float64
	// Alpha, Epsilon, MaxRounds, SendRetries, RoundTimeout mirror
	// agent.Config (broadcast mode always).
	Alpha        float64
	Epsilon      float64
	MaxRounds    int
	SendRetries  int
	RoundTimeout time.Duration
	// Quorum and DepartAfter enable the churn protocol (see
	// agent.Config).
	Quorum      int
	DepartAfter int
	// InitAlive seeds the membership view (nil: all alive) — epoch-2
	// rejoin runs start from RejoinInit's output.
	InitAlive []bool
	// Faults configures the injected fault rules shared by every node;
	// protocol.RoundOf is wired in automatically for round-scoped rules.
	Faults transport.FaultConfig
	// Supervisor is the restart policy template; each node derives its
	// own jitter seed from Supervisor.Seed and its id.
	Supervisor SupervisorConfig
	// Observer is shared by every agent (default: none).
	Observer agent.Observer
	// Metrics, when set, meters every endpoint (send/recv counters and
	// payload-size histograms) and publishes the per-node fault counters
	// after the run. Endpoints are wrapped once, outside the restart
	// loop, so counts are cumulative across crash/revive cycles.
	Metrics *metrics.Registry
}

// ChurnResult aggregates a churn run. Unlike agent.RunCluster, per-node
// failure is an expected outcome (a permanently dead node ends with a
// typed error while the survivors converge), so errors are reported per
// node instead of joined.
type ChurnResult struct {
	// Outcomes and Errs are per node; exactly one of Outcomes[i] being
	// meaningful / Errs[i] non-nil holds per node.
	Outcomes []SupervisedOutcome
	Errs     []error
	// Stores holds every node's in-memory checkpoint history — the
	// per-round Σx = 1 evidence.
	Stores []*MemStore
	// Faults aggregates injected-fault counters across all endpoints.
	Faults transport.FaultStats
	// X is the final allocation from the first surviving node's view
	// (verified identical across survivors), and Alive its membership.
	X     []float64
	Alive []bool
	// Rounds and Converged are the surviving nodes' agreed outcome.
	Rounds    int
	Converged bool
	// Survivors lists the nodes that finished without error.
	Survivors []int
}

// RunChurnCluster executes one supervised agent per node over an
// in-memory network wrapped in fault endpoints. It never hangs: every
// node either finishes (converged or MaxRounds) or returns a typed error
// (restart budget, round timeout, desync, lapped), and the survivors'
// final views are checked bit-identical before being reported.
func RunChurnCluster(ctx context.Context, cfg ChurnClusterConfig) (ChurnResult, error) {
	n := len(cfg.Models)
	if n < 2 {
		return ChurnResult{}, fmt.Errorf("recovery: cluster needs at least 2 nodes, got %d", n)
	}
	if len(cfg.Init) != n {
		return ChurnResult{}, fmt.Errorf("recovery: %d initial fragments for %d nodes", len(cfg.Init), n)
	}
	net, err := transport.NewMemoryNetwork(n)
	if err != nil {
		return ChurnResult{}, fmt.Errorf("recovery: building memory network: %w", err)
	}
	defer net.Close() //fap:ignore errdrop shutdown of an in-memory fixture

	faults := cfg.Faults
	if faults.RoundOf == nil {
		faults.RoundOf = protocol.RoundOf
	}

	if cfg.Observer != nil && cfg.InitAlive != nil {
		// An alive node entering an epoch with a zero fragment is a
		// rejoiner (RejoinInit's construction): announce its re-entry.
		for i := 0; i < n; i++ {
			if cfg.InitAlive[i] && cfg.Init[i] == 0 {
				cfg.Observer.RecoveryEvent(i, 0, "rejoin", "re-entering with a zero fragment")
			}
		}
	}

	res := ChurnResult{
		Outcomes: make([]SupervisedOutcome, n),
		Errs:     make([]error, n),
		Stores:   make([]*MemStore, n),
	}
	feps := make([]*transport.FaultEndpoint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			return ChurnResult{}, err
		}
		fep, err := transport.NewFaultEndpoint(ep, faults)
		if err != nil {
			return ChurnResult{}, fmt.Errorf("recovery: wrapping endpoint %d: %w", i, err)
		}
		feps[i] = fep
		var aep transport.Endpoint = fep
		if cfg.Metrics != nil {
			aep = transport.NewMeteredEndpoint(fep, cfg.Metrics)
		}
		res.Stores[i] = NewMemStore(i, n)
		sup := cfg.Supervisor
		sup.Seed = sup.Seed*31 + int64(i) + 1
		acfg := agent.Config{
			Endpoint:     aep,
			Model:        cfg.Models[i],
			Init:         cfg.Init[i],
			Alpha:        cfg.Alpha,
			Epsilon:      cfg.Epsilon,
			MaxRounds:    cfg.MaxRounds,
			Mode:         agent.Broadcast,
			SendRetries:  cfg.SendRetries,
			RoundTimeout: cfg.RoundTimeout,
			Quorum:       cfg.Quorum,
			DepartAfter:  cfg.DepartAfter,
			Observer:     cfg.Observer,
		}
		if cfg.InitAlive != nil {
			acfg.InitAlive = append([]bool(nil), cfg.InitAlive...)
		}
		wg.Add(1)
		go func(i int, acfg agent.Config, sup SupervisorConfig) {
			defer wg.Done()
			res.Outcomes[i], res.Errs[i] = RunSupervisedAgent(ctx, acfg, sup, res.Stores[i])
		}(i, acfg, sup)
	}
	wg.Wait()

	// Drain surviving inboxes before reading fault stats: recv-side rules
	// (a partition swallowing reports, say) count at delivery, and a node
	// that dies on a round timeout stops receiving at a wall-clock-
	// dependent instant. Draining makes those counters a function of what
	// the network delivered — deterministic — rather than of shutdown
	// timing. Crashed endpoints refuse Recv and hold no countable state.
	for _, fep := range feps {
		if fep.Crashed() {
			continue
		}
		drainCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
		for {
			if _, err := fep.Recv(drainCtx); err != nil {
				break
			}
		}
		cancel()
	}

	for i, fep := range feps {
		stats := fep.Stats()
		res.Faults.Add(stats)
		if cfg.Metrics != nil {
			transport.PublishFaultStats(cfg.Metrics, i, stats)
		}
	}
	for i := 0; i < n; i++ {
		if res.Errs[i] == nil {
			res.Survivors = append(res.Survivors, i)
		}
	}
	if len(res.Survivors) == 0 {
		return res, fmt.Errorf("recovery: no node survived the run (node 0: %w)", res.Errs[0])
	}
	first := res.Survivors[0]
	ref := res.Outcomes[first]
	for _, s := range res.Survivors[1:] {
		o := res.Outcomes[s]
		if o.Rounds != ref.Rounds || o.Converged != ref.Converged {
			return res, fmt.Errorf("recovery: survivors disagree on outcome (node %d: %d rounds converged=%t, node %d: %d rounds converged=%t)",
				first, ref.Rounds, ref.Converged, s, o.Rounds, o.Converged)
		}
		for j := range ref.FullX {
			if o.FullX[j] != ref.FullX[j] {
				return res, fmt.Errorf("recovery: survivors %d and %d disagree on x[%d] (%v vs %v)", first, s, j, ref.FullX[j], o.FullX[j])
			}
			if o.Alive[j] != ref.Alive[j] {
				return res, fmt.Errorf("recovery: survivors %d and %d disagree on membership of node %d", first, s, j)
			}
		}
	}
	res.X = append([]float64(nil), ref.FullX...)
	res.Alive = append([]bool(nil), ref.Alive...)
	res.Rounds = ref.Rounds
	res.Converged = ref.Converged
	return res, nil
}
