package recovery

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// The churn suite's contract (the tentpole acceptance criteria): every
// scenario either converges to the KKT-certified optimum on the surviving
// support or fails with a typed error — no hangs, no silent drift from
// Σx_i = 1 — and a killed-then-restarted agent resumes from its
// checkpoint onto the bit-identical trajectory of an uninterrupted run.

// ringModel builds the paper's experimental system: 4-node unit ring,
// μ = 1.5, λ = 1, k = 1 (symmetric, so the full-support optimum is
// uniform).
func ringModel(t *testing.T) *costmodel.SingleFile {
	t.Helper()
	ring, err := topology.Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := topology.AccessCosts(ring, topology.UniformRates(4, 1), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// churnConfig assembles the suite's shared base configuration.
func churnConfig(t *testing.T, m *costmodel.SingleFile) ChurnClusterConfig {
	t.Helper()
	return ChurnClusterConfig{
		Models:      agent.ModelsFromSingleFile(m),
		Init:        []float64{0.8, 0.1, 0.1, 0},
		Alpha:       0.3,
		Epsilon:     1e-3,
		MaxRounds:   500,
		Quorum:      3,
		DepartAfter: 2,
		Supervisor:  SupervisorConfig{MaxRestarts: 3, BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond, Seed: 1986},
	}
}

// assertSumInvariant requires Σ FullX = 1 on every checkpoint after the
// first full exchange — the Theorem-1 invariant across every crash,
// departure, and redistribution path.
func assertSumInvariant(t *testing.T, stores []*MemStore) {
	t.Helper()
	for node, s := range stores {
		for _, ck := range s.History() {
			if ck.Round == 0 {
				continue // round 0 precedes the first exchange
			}
			if sum := ck.SumX(); math.Abs(sum-1) > 1e-9 {
				t.Errorf("node %d round %d: Σx = %v, want 1", node, ck.Round, sum)
			}
		}
	}
}

// assertNearOptimum certifies the surviving allocation against the exact
// KKT optimum of the reduced (survivors-only) system.
func assertNearOptimum(t *testing.T, m *costmodel.SingleFile, x []float64, alive []bool) {
	t.Helper()
	var access, service []float64
	var xRed []float64
	for i := range alive {
		if alive[i] {
			access = append(access, m.AccessCost(i))
			service = append(service, m.ServiceRate(i))
			xRed = append(xRed, x[i])
		} else if x[i] != 0 {
			t.Errorf("departed node %d still holds x = %v", i, x[i])
		}
	}
	reduced, err := costmodel.NewSingleFile(access, service, m.Lambda(), m.K())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := reduced.SolveKKT(1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if err := reduced.VerifyKKT(xRed, sol.Q, 0.02); err != nil {
		t.Errorf("surviving allocation fails KKT certification: %v", err)
	}
	for i := range xRed {
		if math.Abs(xRed[i]-sol.X[i]) > 0.02 {
			t.Errorf("survivor fragment %d = %v, KKT optimum %v", i, xRed[i], sol.X[i])
		}
	}
	var sum float64
	for _, xi := range xRed {
		sum += xi
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("surviving allocation sums to %v, want 1 within 1 ulp-ish", sum)
	}
}

// TestChurnFaultFreeMatchesPlainCluster pins the churn machinery's zero
// overhead: with quorum enabled but no faults injected, every round is
// full and the trajectory is bit-identical to the plain cluster runner's.
func TestChurnFaultFreeMatchesPlainCluster(t *testing.T) {
	m := ringModel(t)
	plain, err := agent.RunCluster(context.Background(), agent.ClusterConfig{
		Models:    agent.ModelsFromSingleFile(m),
		Init:      []float64{0.8, 0.1, 0.1, 0},
		Alpha:     0.3,
		Epsilon:   1e-3,
		MaxRounds: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChurnCluster(context.Background(), churnConfig(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != plain.Rounds {
		t.Fatalf("churn run: converged=%t rounds=%d, plain rounds=%d", res.Converged, res.Rounds, plain.Rounds)
	}
	for i := range plain.X {
		if res.X[i] != plain.X[i] {
			t.Errorf("x[%d] = %v, plain cluster %v", i, res.X[i], plain.X[i])
		}
	}
	assertSumInvariant(t, res.Stores)
}

// TestCrashResumeBitIdentical is the headline acceptance test: node 2 is
// killed mid-run, supervised-restarted, resumes from its checkpoint, and
// the cluster finishes on the bit-identical trajectory of an
// uninterrupted same-seed run — including node 2's own per-round
// checkpoint history.
func TestCrashResumeBitIdentical(t *testing.T) {
	m := ringModel(t)
	baseline, err := RunChurnCluster(context.Background(), churnConfig(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Converged {
		t.Fatal("baseline did not converge")
	}

	cfg := churnConfig(t, m)
	obs := &agent.CounterObserver{}
	cfg.Observer = obs
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{{
			Kind: transport.FaultCrash, Direction: transport.DirSend,
			Nodes: []int{2}, FromRound: 5, ToRound: 5,
		}},
	}
	res, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d failed: %v", i, e)
		}
	}
	if got := res.Outcomes[2].Restarts; got != 1 {
		t.Errorf("node 2 restarts = %d, want 1", got)
	}
	if res.Faults.Crashes != 1 {
		t.Errorf("injected crashes = %d, want 1", res.Faults.Crashes)
	}
	if !res.Converged || res.Rounds != baseline.Rounds {
		t.Fatalf("crashed run: converged=%t rounds=%d, baseline rounds=%d", res.Converged, res.Rounds, baseline.Rounds)
	}
	for i := range baseline.X {
		if res.X[i] != baseline.X[i] {
			t.Errorf("x[%d] = %v, baseline %v (trajectory not bit-identical)", i, res.X[i], baseline.X[i])
		}
	}
	// Node 2's checkpoint history: round 5 appears twice (pre-crash and
	// on resume) with identical state, and every round matches the
	// uninterrupted run's checkpoint bit for bit.
	base := map[int]Checkpoint{}
	for _, ck := range baseline.Stores[2].History() {
		base[ck.Round] = ck
	}
	history := res.Stores[2].History()
	seen5 := 0
	for _, ck := range history {
		if ck.Round == 5 {
			seen5++
		}
		want, ok := base[ck.Round]
		if !ok {
			t.Errorf("node 2 checkpointed round %d absent from baseline", ck.Round)
			continue
		}
		if ck.X != want.X || ck.Planned != want.Planned {
			t.Errorf("node 2 round %d: x=%v planned=%#x, baseline x=%v planned=%#x", ck.Round, ck.X, ck.Planned, want.X, want.Planned)
		}
		for j := range want.FullX {
			if ck.FullX[j] != want.FullX[j] {
				t.Errorf("node 2 round %d: full_x[%d]=%v, baseline %v", ck.Round, j, ck.FullX[j], want.FullX[j])
			}
		}
	}
	if seen5 != 2 {
		t.Errorf("node 2 checkpointed round 5 %d times, want 2 (pre-crash + resume)", seen5)
	}
	assertSumInvariant(t, res.Stores)
	c := obs.Counters()
	for _, kind := range []string{"crash", "restart", "resume"} {
		if c.RecoveryByKind[kind] == 0 {
			t.Errorf("no %q recovery event observed", kind)
		}
	}
}

// TestCrashDepartRedistributes kills node 3 for good: the supervisor's
// budget forbids restart, the survivors declare it departed after two
// missed quorum rounds, absorb its fraction feasibility-preservingly, and
// converge to the KKT optimum of the reduced system.
func TestCrashDepartRedistributes(t *testing.T) {
	m := ringModel(t)
	cfg := churnConfig(t, m)
	obs := &agent.CounterObserver{}
	cfg.Observer = obs
	cfg.RoundTimeout = 200 * time.Millisecond
	cfg.Supervisor.MaxRestarts = -1 // a permanently dead process
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{{
			Kind: transport.FaultCrash, Direction: transport.DirSend,
			Nodes: []int{3}, FromRound: 4,
		}},
	}
	res, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errs[3], ErrRestartBudget) || !errors.Is(res.Errs[3], transport.ErrCrashed) {
		t.Errorf("node 3 error = %v, want ErrRestartBudget wrapping ErrCrashed", res.Errs[3])
	}
	if len(res.Survivors) != 3 {
		t.Fatalf("survivors = %v, want [0 1 2]", res.Survivors)
	}
	if res.Alive[3] {
		t.Error("node 3 still marked alive on the survivors")
	}
	if !res.Converged {
		t.Fatal("survivors did not converge on the reduced support")
	}
	assertNearOptimum(t, m, res.X, res.Alive)
	assertSumInvariant(t, res.Stores)
	c := obs.Counters()
	if got := c.RecoveryByKind["depart"]; got != 3 {
		t.Errorf("depart events = %d, want 3 (one per survivor)", got)
	}
	if c.RecoveryByKind["quorum"] == 0 {
		t.Error("no quorum-round events observed")
	}
}

// TestPartitionDepart partitions node 1 away mid-run: it fails with the
// typed round-timeout error (its quorum can never be met), while the
// survivors quorum through, depart it, and converge on the reduced
// support.
func TestPartitionDepart(t *testing.T) {
	m := ringModel(t)
	cfg := churnConfig(t, m)
	cfg.RoundTimeout = 200 * time.Millisecond
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{{
			Kind: transport.FaultPartition, Direction: transport.DirBoth,
			Nodes: []int{1}, FromRound: 6,
		}},
	}
	res, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errs[1], agent.ErrRoundTimeout) {
		t.Errorf("partitioned node error = %v, want ErrRoundTimeout", res.Errs[1])
	}
	if len(res.Survivors) != 3 || res.Alive[1] {
		t.Fatalf("survivors = %v, alive[1] = %t", res.Survivors, res.Alive[1])
	}
	if !res.Converged {
		t.Fatal("survivors did not converge")
	}
	assertNearOptimum(t, m, res.X, res.Alive)
	assertSumInvariant(t, res.Stores)
}

// TestDepartRejoin closes the loop: after a crash-departure epoch the
// dead node rejoins epoch 2 with a zero fragment and climbs back to the
// full-support optimum via the active-set mechanics.
func TestDepartRejoin(t *testing.T) {
	m := ringModel(t)
	cfg := churnConfig(t, m)
	cfg.RoundTimeout = 200 * time.Millisecond
	cfg.Supervisor.MaxRestarts = -1
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{{
			Kind: transport.FaultCrash, Direction: transport.DirSend,
			Nodes: []int{3}, FromRound: 4,
		}},
	}
	epoch1, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !epoch1.Converged || epoch1.Alive[3] {
		t.Fatalf("epoch 1: converged=%t alive[3]=%t", epoch1.Converged, epoch1.Alive[3])
	}

	init2, alive2, err := RejoinInit(epoch1.X, epoch1.Alive, 3)
	if err != nil {
		t.Fatal(err)
	}
	if init2[3] != 0 || !alive2[3] {
		t.Fatalf("RejoinInit: x[3]=%v alive[3]=%t", init2[3], alive2[3])
	}
	obs := &agent.CounterObserver{}
	cfg2 := churnConfig(t, m)
	cfg2.Init = init2
	cfg2.InitAlive = alive2
	cfg2.Observer = obs
	epoch2, err := RunChurnCluster(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range epoch2.Errs {
		if e != nil {
			t.Fatalf("epoch 2 node %d: %v", i, e)
		}
	}
	if !epoch2.Converged {
		t.Fatal("epoch 2 did not converge")
	}
	if epoch2.X[3] <= 0 {
		t.Errorf("rejoiner never climbed back in: x[3] = %v", epoch2.X[3])
	}
	assertNearOptimum(t, m, epoch2.X, epoch2.Alive)
	assertSumInvariant(t, epoch2.Stores)
	if got := obs.Counters().RecoveryByKind["rejoin"]; got != 1 {
		t.Errorf("rejoin events = %d, want 1", got)
	}
}

// TestDoubleCrashResume kills two different nodes in different rounds;
// both are supervised back and the run still lands on the uninterrupted
// trajectory bit for bit.
func TestDoubleCrashResume(t *testing.T) {
	m := ringModel(t)
	baseline, err := RunChurnCluster(context.Background(), churnConfig(t, m))
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(t, m)
	cfg.Faults = transport.FaultConfig{
		Rules: []transport.FaultRule{
			{Kind: transport.FaultCrash, Direction: transport.DirSend, Nodes: []int{1}, FromRound: 4, ToRound: 4},
			{Kind: transport.FaultCrash, Direction: transport.DirSend, Nodes: []int{2}, FromRound: 7, ToRound: 7},
		},
	}
	res, err := RunChurnCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d failed: %v", i, e)
		}
	}
	if res.Outcomes[1].Restarts != 1 || res.Outcomes[2].Restarts != 1 {
		t.Errorf("restarts = %d/%d, want 1/1", res.Outcomes[1].Restarts, res.Outcomes[2].Restarts)
	}
	if res.Faults.Crashes != 2 {
		t.Errorf("injected crashes = %d, want 2", res.Faults.Crashes)
	}
	if !res.Converged || res.Rounds != baseline.Rounds {
		t.Fatalf("converged=%t rounds=%d, baseline %d", res.Converged, res.Rounds, baseline.Rounds)
	}
	for i := range baseline.X {
		if res.X[i] != baseline.X[i] {
			t.Errorf("x[%d] = %v, baseline %v", i, res.X[i], baseline.X[i])
		}
	}
	assertSumInvariant(t, res.Stores)
}

// TestRejoinInitValidation covers the rejoin construction's error paths.
func TestRejoinInitValidation(t *testing.T) {
	x := []float64{0.5, 0.5, 0, 0}
	alive := []bool{true, true, true, false}
	if _, _, err := RejoinInit(x, alive[:3], 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := RejoinInit(x, alive, 4); err == nil {
		t.Error("out-of-range rejoiner accepted")
	}
	if _, _, err := RejoinInit(x, alive, 0); err == nil {
		t.Error("live rejoiner accepted")
	}
	if _, _, err := RejoinInit([]float64{0.2, 0.2, 0, 0}, alive, 3); err == nil {
		t.Error("infeasible survivor mass accepted")
	}
	x2, alive2, err := RejoinInit(x, alive, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, xi := range x2 {
		sum += xi
	}
	if sum != 1 || x2[3] != 0 || !alive2[3] {
		t.Errorf("RejoinInit = %v (Σ=%v), alive=%v", x2, sum, alive2)
	}
	// The inputs are not aliased by the outputs.
	x2[0] = 99
	if x[0] == 99 {
		t.Error("RejoinInit aliases its input slice")
	}
}
