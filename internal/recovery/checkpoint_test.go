package recovery

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCheckpoint(t *testing.T, round int) Checkpoint {
	t.Helper()
	c := Checkpoint{
		Version: Version,
		Node:    1,
		Peers:   4,
		Round:   round,
		X:       0.25,
		FullX:   []float64{0.5, 0.25, 0.25, 0},
		Alive:   []bool{true, true, true, true},
		Planned: 0b1111,
	}
	if err := c.Seal(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := sampleCheckpoint(t, 7)
	path := filepath.Join(dir, fileName(7))
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || got.Node != 1 || got.X != 0.25 || got.Planned != 0b1111 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	for i, xi := range c.FullX {
		if got.FullX[i] != xi {
			t.Errorf("FullX[%d] = %v, want %v", i, got.FullX[i], xi)
		}
	}
	// No temp files left behind by the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	c := sampleCheckpoint(t, 3)
	path := filepath.Join(dir, fileName(3))
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the allocation: the checksum must catch it.
	tampered := strings.Replace(string(b), "0.25", "0.26", 1)
	if tampered == string(b) {
		t.Fatal("tampering had no effect")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered ReadFile = %v, want ErrCorrupt", err)
	}
	// Truncated file.
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated ReadFile = %v, want ErrCorrupt", err)
	}
	// Wrong version.
	wrong := c
	wrong.Version = Version + 1
	if err := wrong.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := wrong.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong-version Validate = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointValidateShapeChecks(t *testing.T) {
	cases := []func(*Checkpoint){
		func(c *Checkpoint) { c.Node = 9 },
		func(c *Checkpoint) { c.Round = -1 },
		func(c *Checkpoint) { c.FullX = c.FullX[:2] },
		func(c *Checkpoint) { c.Alive = []bool{true, false, true, true} }, // own node departed
		func(c *Checkpoint) { c.X = -0.5 },
		func(c *Checkpoint) { c.FullX[0] = -1 },
	}
	for i, mutate := range cases {
		c := sampleCheckpoint(t, 1)
		mutate(&c)
		if err := c.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: Validate = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestCheckpointSupportAndSum(t *testing.T) {
	c := sampleCheckpoint(t, 0)
	s := c.Support()
	if len(s) != 3 || s[0] != 0 || s[1] != 1 || s[2] != 2 {
		t.Errorf("Support() = %v, want [0 1 2]", s)
	}
	if got := c.SumX(); got != 1 {
		t.Errorf("SumX() = %v, want 1", got)
	}
}

func TestStoreSaveLatestPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.5, 0.25, 0.25, 0}
	alive := []bool{true, true, true, true}
	for round := 0; round < 6; round++ {
		if err := s.SaveRound(round, 0.25, xs, alive, 0b1111); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("store holds %d files after pruning, want 3", len(entries))
	}
	ck, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest = ok=%t, %v", ok, err)
	}
	if ck.Round != 5 {
		t.Errorf("Latest round = %d, want 5", ck.Round)
	}
	// Corrupt the newest file: Latest falls back to the previous one.
	if err := os.WriteFile(filepath.Join(dir, fileName(5)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, ok, err = s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest after corruption = ok=%t, %v", ok, err)
	}
	if ck.Round != 4 {
		t.Errorf("fallback Latest round = %d, want 4", ck.Round)
	}
}

func TestStoreLatestEmptyAndAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Latest(); ok || err != nil {
		t.Fatalf("empty Latest = ok=%t, %v; want ok=false, nil", ok, err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName(2)), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("all-corrupt Latest = %v, want ErrCorrupt", err)
	}
}

func TestStoreRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A checkpoint from another node parked in this store's directory.
	c := sampleCheckpoint(t, 2)
	if err := WriteFile(filepath.Join(dir, fileName(2)), c); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(dir, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("foreign-node Latest = %v, want ErrCorrupt", err)
	}
}

func TestMemStoreHistoryAndLatest(t *testing.T) {
	m := NewMemStore(0, 2)
	if _, ok, err := m.Latest(); ok || err != nil {
		t.Fatalf("empty Latest = ok=%t, %v", ok, err)
	}
	xs := []float64{0.6, 0.4}
	alive := []bool{true, true}
	for round := 0; round < 3; round++ {
		if err := m.SaveRound(round, xs[0], xs, alive, 0b11); err != nil {
			t.Fatal(err)
		}
	}
	h := m.History()
	if len(h) != 3 || h[2].Round != 2 {
		t.Fatalf("History = %d entries, last round %d", len(h), h[len(h)-1].Round)
	}
	ck, ok, err := m.Latest()
	if err != nil || !ok || ck.Round != 2 {
		t.Errorf("Latest = %+v, ok=%t, %v", ck, ok, err)
	}
	for _, c := range h {
		if err := c.Validate(); err != nil {
			t.Errorf("round %d checkpoint invalid: %v", c.Round, err)
		}
	}
}
