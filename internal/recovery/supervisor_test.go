package recovery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"filealloc/internal/transport"
)

// fakeClock records requested sleeps without waiting.
type fakeClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
	return ctx.Err()
}

func crashErr(i int) error {
	return fmt.Errorf("attempt %d: %w", i, transport.ErrCrashed)
}

func TestSuperviseRestartsUntilSuccess(t *testing.T) {
	clock := &fakeClock{}
	cfg := SupervisorConfig{MaxRestarts: 5, BackoffBase: 10 * time.Millisecond, BackoffCap: 40 * time.Millisecond, Seed: 7, Clock: clock}
	attempts, err := Supervise(context.Background(), cfg, func(ctx context.Context, attempt int) error {
		if attempt < 2 {
			return crashErr(attempt)
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Supervise = %d attempts, %v; want 3, nil", attempts, err)
	}
	if len(clock.sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.sleeps))
	}
	// Capped exponential with jitter in [d/2, d].
	for i, d := range clock.sleeps {
		base := 10 * time.Millisecond << uint(i)
		if base > 40*time.Millisecond {
			base = 40 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
}

func TestSuperviseBackoffDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		clock := &fakeClock{}
		cfg := SupervisorConfig{MaxRestarts: 4, BackoffBase: 8 * time.Millisecond, BackoffCap: time.Second, Seed: seed, Clock: clock}
		_, err := Supervise(context.Background(), cfg, func(ctx context.Context, attempt int) error {
			return crashErr(attempt)
		})
		if !errors.Is(err, ErrRestartBudget) {
			t.Fatalf("err = %v, want ErrRestartBudget", err)
		}
		return clock.sleeps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d differs across replays: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}

func TestSuperviseBudgetExhaustedWrapsLastError(t *testing.T) {
	clock := &fakeClock{}
	cfg := SupervisorConfig{MaxRestarts: 2, Clock: clock, BackoffBase: time.Millisecond}
	attempts, err := Supervise(context.Background(), cfg, func(ctx context.Context, attempt int) error {
		return crashErr(attempt)
	})
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 restarts)", attempts)
	}
	if !errors.Is(err, ErrRestartBudget) || !errors.Is(err, transport.ErrCrashed) {
		t.Errorf("err = %v, want both ErrRestartBudget and ErrCrashed", err)
	}
}

func TestSuperviseNonRetryableReturnsImmediately(t *testing.T) {
	boom := errors.New("logic bug")
	clock := &fakeClock{}
	attempts, err := Supervise(context.Background(), SupervisorConfig{Clock: clock}, func(ctx context.Context, attempt int) error {
		return boom
	})
	if attempts != 1 || !errors.Is(err, boom) {
		t.Errorf("Supervise = %d attempts, %v; want 1, the original error", attempts, err)
	}
	if len(clock.sleeps) != 0 {
		t.Errorf("slept %d times on a non-retryable error", len(clock.sleeps))
	}
}

func TestSuperviseNegativeBudgetForbidsRestart(t *testing.T) {
	clock := &fakeClock{}
	cfg := SupervisorConfig{MaxRestarts: -1, Clock: clock}
	attempts, err := Supervise(context.Background(), cfg, func(ctx context.Context, attempt int) error {
		return crashErr(attempt)
	})
	if attempts != 1 || !errors.Is(err, ErrRestartBudget) {
		t.Errorf("Supervise = %d attempts, %v; want 1 attempt and ErrRestartBudget", attempts, err)
	}
}

func TestSuperviseCanceledContextStopsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Supervise(ctx, SupervisorConfig{}, func(ctx context.Context, attempt int) error {
		return crashErr(attempt)
	})
	if !errors.Is(err, transport.ErrCrashed) {
		// A canceled context short-circuits before any restart; the run
		// error itself is surfaced.
		t.Errorf("err = %v, want the run's crash error", err)
	}
}

func TestTimerClockHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (TimerClock{}).Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep under canceled ctx = %v, want context.Canceled", err)
	}
	start := time.Now()
	if err := (TimerClock{}).Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("Sleep returned after %v, want ≥ 1ms", elapsed)
	}
}
