package recovery

import (
	"context"
	"fmt"
	"math"

	"filealloc/internal/agent"
	"filealloc/internal/core"
)

// Resumer is a checkpoint sink that can also produce the latest valid
// checkpoint to resume from; *Store and *MemStore both implement it.
type Resumer interface {
	agent.CheckpointSink
	Latest() (Checkpoint, bool, error)
}

// SupervisedOutcome is an agent outcome plus its restart history.
type SupervisedOutcome struct {
	agent.Outcome
	// Restarts is how many times the supervisor restarted the agent.
	Restarts int
}

// reviver is the optional endpoint capability a restart exercises;
// transport.FaultEndpoint implements it.
type reviver interface{ Revive() }

// RunSupervisedAgent runs one agent under a supervisor: every checkpoint
// lands in store, and when the run dies on a retryable error (by default
// a transport crash) the supervisor waits out a seeded backoff, revives
// the endpoint if it supports it, and re-runs the agent from the latest
// valid checkpoint. Because checkpoints are taken at the top of a round
// before its first send, the resumed run re-broadcasts an identical
// report — discarded by peers as a benign duplicate — and continues the
// uninterrupted trajectory bit for bit.
func RunSupervisedAgent(ctx context.Context, cfg agent.Config, sup SupervisorConfig, store Resumer) (SupervisedOutcome, error) {
	if store == nil {
		return SupervisedOutcome{}, fmt.Errorf("recovery: nil checkpoint store")
	}
	if cfg.Endpoint == nil {
		return SupervisedOutcome{}, fmt.Errorf("recovery: nil endpoint")
	}
	cfg.Checkpoint = store
	obs := cfg.Observer
	if obs == nil {
		obs = agent.NopObserver{}
	}
	id := cfg.Endpoint.ID()

	var out agent.Outcome
	// Messages sent by attempts that died mid-run must still count: the
	// supervised outcome reports cumulative traffic across the whole
	// crash/restart history, monotone like the metrics built on it.
	var priorMessages int
	attempts, err := Supervise(ctx, sup, func(ctx context.Context, attempt int) error {
		run := cfg
		if attempt > 0 {
			if r, ok := cfg.Endpoint.(reviver); ok {
				r.Revive()
			}
			ck, ok, err := store.Latest()
			if err != nil {
				return err // corrupt store: non-retryable, surfaces as-is
			}
			if ok {
				run.StartRound = ck.Round
				run.Init = ck.X
				run.InitFullX = ck.FullX
				run.InitAlive = ck.Alive
				run.InitPlanned = ck.Planned
				obs.RecoveryEvent(id, ck.Round, "resume", fmt.Sprintf("restart %d resuming from round-%d checkpoint", attempt, ck.Round))
			} else {
				obs.RecoveryEvent(id, 0, "resume", fmt.Sprintf("restart %d found no checkpoint; starting fresh", attempt))
			}
			obs.RecoveryEvent(id, run.StartRound, "restart", fmt.Sprintf("attempt %d", attempt+1))
		}
		o, err := agent.Run(ctx, run)
		if err != nil {
			priorMessages += o.MessagesSent
			obs.RecoveryEvent(id, o.Rounds, "crash", err.Error())
			return err
		}
		o.MessagesSent += priorMessages
		out = o
		return nil
	})
	return SupervisedOutcome{Outcome: out, Restarts: attempts - 1}, err
}

// RejoinInit builds the epoch-2 starting state for a cluster where a
// departed node re-enters: the survivors keep the allocation they
// converged to (renormalized so Σ = 1 holds to within 1 ulp), and the
// rejoiner starts with a zero fragment and climbs back in through
// PlanStep's active-set re-admission — exactly how the paper's mechanism
// admits a newly attractive site. It returns the initial allocation and
// alive set for the new epoch's run.
func RejoinInit(survivorX []float64, alive []bool, rejoiner int) ([]float64, []bool, error) {
	n := len(survivorX)
	if len(alive) != n {
		return nil, nil, fmt.Errorf("recovery: %d fragments but %d alive entries", n, len(alive))
	}
	if rejoiner < 0 || rejoiner >= n {
		return nil, nil, fmt.Errorf("recovery: rejoiner %d outside cluster of %d", rejoiner, n)
	}
	if alive[rejoiner] {
		return nil, nil, fmt.Errorf("recovery: node %d is not departed", rejoiner)
	}
	x := append([]float64(nil), survivorX...)
	var survivors []int
	for i, a := range alive {
		if a {
			survivors = append(survivors, i)
		}
	}
	var sum float64
	for _, s := range survivors {
		sum += x[s]
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, nil, fmt.Errorf("recovery: survivor allocation sums to %v, not 1", sum)
	}
	// Pin Σ = 1 exactly before handing the allocation to a fresh epoch.
	if err := core.Renormalize(x, survivors); err != nil {
		return nil, nil, fmt.Errorf("recovery: normalizing survivor allocation: %w", err)
	}
	x[rejoiner] = 0
	alive2 := append([]bool(nil), alive...)
	alive2[rejoiner] = true
	return x, alive2, nil
}
