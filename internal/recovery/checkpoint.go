// Package recovery adds crash recovery to the decentralized allocation
// protocol: deterministic versioned checkpoints of agent round state, a
// supervisor that restarts crashed agents with capped seeded backoff and
// resumes them from their latest valid checkpoint, and membership-churn
// runs where survivors redistribute a departed node's fraction without
// ever leaving Σx_i = 1 (Theorem 1) and a departed node rejoins a later
// epoch with a zero fragment.
package recovery

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	// ErrNoCheckpoint reports an empty store: nothing to resume from.
	ErrNoCheckpoint = errors.New("recovery: no checkpoint")
	// ErrCorrupt reports a checkpoint that fails validation (bad
	// checksum, wrong version, inconsistent shape).
	ErrCorrupt = errors.New("recovery: corrupt checkpoint")
)

// Version is the current checkpoint format version. Loaders reject any
// other value rather than guess at field semantics.
const Version = 1

// Checkpoint is the durable round state of one agent, captured at the top
// of a round before any message of that round is sent. Restoring it and
// re-running from Round reproduces the uninterrupted trajectory bit for
// bit: every field the round loop reads is here, and nothing
// non-deterministic (no timestamps, no wall-clock anything) is recorded.
type Checkpoint struct {
	Version int `json:"version"`
	// Node and Peers pin the checkpoint to its cluster position.
	Node  int `json:"node"`
	Peers int `json:"peers"`
	// Round is the round the state belongs to — the round to resume at.
	Round int `json:"round"`
	// X is the node's own fragment at the top of Round.
	X float64 `json:"x"`
	// FullX is the node's view of the full allocation.
	FullX []float64 `json:"full_x"`
	// Alive is the live-membership view; false entries are departed.
	Alive []bool `json:"alive"`
	// Planned is the bitmask fingerprint of the previous round's
	// planning group (zero: no previous plan).
	Planned uint64 `json:"planned"`
	// Checksum is the hex SHA-256 of the canonical JSON encoding of the
	// checkpoint with this field empty; it detects torn or bit-rotted
	// files.
	Checksum string `json:"checksum"`
}

// digest computes the checkpoint's canonical checksum.
func (c Checkpoint) digest() (string, error) {
	c.Checksum = ""
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("recovery: encoding checkpoint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Seal fills in the checksum.
func (c *Checkpoint) Seal() error {
	d, err := c.digest()
	if err != nil {
		return err
	}
	c.Checksum = d
	return nil
}

// Validate checks the checkpoint's integrity and internal consistency.
func (c Checkpoint) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrCorrupt, c.Version, Version)
	}
	d, err := c.digest()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if c.Checksum != d {
		return fmt.Errorf("%w: checksum mismatch (stored %.12s…, computed %.12s…)", ErrCorrupt, c.Checksum, d)
	}
	if c.Peers < 2 {
		return fmt.Errorf("%w: cluster of %d", ErrCorrupt, c.Peers)
	}
	if c.Node < 0 || c.Node >= c.Peers {
		return fmt.Errorf("%w: node %d outside cluster of %d", ErrCorrupt, c.Node, c.Peers)
	}
	if c.Round < 0 {
		return fmt.Errorf("%w: round %d", ErrCorrupt, c.Round)
	}
	if len(c.FullX) != c.Peers || len(c.Alive) != c.Peers {
		return fmt.Errorf("%w: %d fragments and %d alive entries for cluster of %d", ErrCorrupt, len(c.FullX), len(c.Alive), c.Peers)
	}
	if !c.Alive[c.Node] {
		return fmt.Errorf("%w: checkpoint declares its own node departed", ErrCorrupt)
	}
	if c.X < 0 || math.IsNaN(c.X) || math.IsInf(c.X, 0) {
		return fmt.Errorf("%w: fragment x = %v", ErrCorrupt, c.X)
	}
	for i, xi := range c.FullX {
		if xi < 0 || math.IsNaN(xi) || math.IsInf(xi, 0) {
			return fmt.Errorf("%w: full_x[%d] = %v", ErrCorrupt, i, xi)
		}
	}
	return nil
}

// Support returns the indices holding a strictly positive fragment.
func (c Checkpoint) Support() []int {
	var s []int
	for i, xi := range c.FullX {
		if xi > 0 {
			s = append(s, i)
		}
	}
	return s
}

// SumX returns Σ FullX.
func (c Checkpoint) SumX() float64 {
	var sum float64
	for _, xi := range c.FullX {
		sum += xi
	}
	return sum
}

// fileName is the canonical on-disk name for a round's checkpoint; the
// fixed-width round makes lexical order equal round order.
func fileName(round int) string {
	return fmt.Sprintf("ckpt-%09d.json", round)
}

// WriteFile atomically persists a sealed checkpoint: it marshals to a
// temporary file in the target directory and renames it into place, so a
// crash mid-write leaves either the old file or the new one, never a torn
// half.
func WriteFile(path string, c Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("recovery: encoding checkpoint: %w", err)
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("recovery: creating temp checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()            //fap:ignore errdrop best-effort cleanup after a failed write
		_ = os.Remove(tmpName) // best-effort cleanup
		return fmt.Errorf("recovery: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // best-effort cleanup
		return fmt.Errorf("recovery: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName) // best-effort cleanup
		return fmt.Errorf("recovery: committing checkpoint: %w", err)
	}
	return nil
}

// ReadFile loads and validates a checkpoint file.
func ReadFile(path string) (Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("recovery: reading checkpoint: %w", err)
	}
	return Decode(b)
}

// Decode parses and validates checkpoint bytes (the WriteFile encoding).
// Corrupt or truncated input yields ErrCorrupt, never a panic — the
// contract FuzzCheckpointValidate hammers on.
func Decode(b []byte) (Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := c.Validate(); err != nil {
		return Checkpoint{}, err
	}
	return c, nil
}

// Store is the durable agent.CheckpointSink: one directory per node,
// one file per round, atomic writes, and pruning of all but the newest
// Keep files. It also serves as the resume source via Latest.
type Store struct {
	dir   string
	node  int
	peers int
	keep  int

	mu     sync.Mutex
	rounds []int // saved rounds, ascending
}

// NewStore opens (creating if needed) a checkpoint directory for one node
// of a cluster of peers nodes. keep bounds the files retained (minimum
// and default 2: the current round and its predecessor, so an invalid
// newest file still leaves a resume point).
func NewStore(dir string, node, peers, keep int) (*Store, error) {
	if peers < 2 || node < 0 || node >= peers {
		return nil, fmt.Errorf("recovery: node %d outside cluster of %d", node, peers)
	}
	if keep == 0 {
		keep = 2
	}
	if keep < 2 {
		return nil, fmt.Errorf("recovery: keep = %d (need at least 2)", keep)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: creating checkpoint dir: %w", err)
	}
	return &Store{dir: dir, node: node, peers: peers, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SaveRound implements agent.CheckpointSink: it seals and atomically
// writes the round's checkpoint, then prunes old files.
func (s *Store) SaveRound(round int, x float64, xs []float64, alive []bool, planned uint64) error {
	c := Checkpoint{
		Version: Version,
		Node:    s.node,
		Peers:   s.peers,
		Round:   round,
		X:       x,
		FullX:   append([]float64(nil), xs...),
		Alive:   append([]bool(nil), alive...),
		Planned: planned,
	}
	if err := c.Seal(); err != nil {
		return err
	}
	if err := WriteFile(filepath.Join(s.dir, fileName(round)), c); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rounds = append(s.rounds, round)
	sort.Ints(s.rounds)
	for len(s.rounds) > s.keep {
		old := s.rounds[0]
		s.rounds = s.rounds[1:]
		if err := os.Remove(filepath.Join(s.dir, fileName(old))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("recovery: pruning checkpoint for round %d: %w", old, err)
		}
	}
	return nil
}

// Latest returns the highest-round valid checkpoint in the store's
// directory. ok is false when the directory holds no checkpoint files at
// all; files that exist but fail validation are skipped, and if every
// file is invalid the error is ErrCorrupt — a store that has data but
// cannot produce a resume point fails loudly rather than silently
// restarting from scratch.
func (s *Store) Latest() (c Checkpoint, ok bool, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("recovery: scanning checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) < 5 || name[:5] != "ckpt-" || filepath.Ext(name) != ".json" {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return Checkpoint{}, false, nil
	}
	// Fixed-width names make lexical descending order round-descending.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var firstErr error
	for _, name := range names {
		c, err := ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if c.Node != s.node || c.Peers != s.peers {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: checkpoint for node %d/%d in store for node %d/%d", ErrCorrupt, c.Node, c.Peers, s.node, s.peers)
			}
			continue
		}
		return c, true, nil
	}
	return Checkpoint{}, false, fmt.Errorf("%w: no valid checkpoint among %d files (first error: %v)", ErrCorrupt, len(names), firstErr)
}

// MemStore is an in-memory agent.CheckpointSink that records every saved
// round — the test harness's window into per-round state for Σx = 1
// property assertions and bit-identical trajectory comparison.
type MemStore struct {
	mu      sync.Mutex
	node    int
	peers   int
	history []Checkpoint
}

// NewMemStore builds a MemStore for one node of a cluster of peers nodes.
func NewMemStore(node, peers int) *MemStore {
	return &MemStore{node: node, peers: peers}
}

// SaveRound implements agent.CheckpointSink.
func (m *MemStore) SaveRound(round int, x float64, xs []float64, alive []bool, planned uint64) error {
	c := Checkpoint{
		Version: Version,
		Node:    m.node,
		Peers:   m.peers,
		Round:   round,
		X:       x,
		FullX:   append([]float64(nil), xs...),
		Alive:   append([]bool(nil), alive...),
		Planned: planned,
	}
	if err := c.Seal(); err != nil {
		return err
	}
	m.mu.Lock()
	m.history = append(m.history, c)
	m.mu.Unlock()
	return nil
}

// History returns a copy of every checkpoint saved, in save order.
func (m *MemStore) History() []Checkpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Checkpoint(nil), m.history...)
}

// Latest returns the highest-round checkpoint saved, matching the Store
// resume interface.
func (m *MemStore) Latest() (Checkpoint, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return Checkpoint{}, false, nil
	}
	best := m.history[0]
	for _, c := range m.history[1:] {
		if c.Round > best.Round {
			best = c
		}
	}
	return best, true, nil
}
