package recovery

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"filealloc/internal/transport"
)

// ErrRestartBudget reports a supervised run that kept crashing until its
// restart budget ran out; the last underlying error is wrapped alongside.
var ErrRestartBudget = errors.New("recovery: restart budget exhausted")

// Clock abstracts the supervisor's only time dependency — waiting out a
// backoff — so tests drive restarts with a fake clock and the package
// never reads wall-clock time into a decision path.
type Clock interface {
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// TimerClock is the production Clock, backed by a timer.
type TimerClock struct{}

// Sleep implements Clock.
func (TimerClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SupervisorConfig tunes the restart policy.
type SupervisorConfig struct {
	// MaxRestarts bounds how many times a crashed run is restarted
	// (default 3); a negative value forbids restarts entirely, modeling
	// a permanently dead process. The run is attempted at most
	// MaxRestarts+1 times.
	MaxRestarts int
	// BackoffBase is the delay before the first restart (default 10ms);
	// it doubles per consecutive restart up to BackoffCap (default 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter stream; a given (seed, crash
	// sequence) replays the identical delays.
	Seed int64
	// Clock injects the wait primitive (default TimerClock).
	Clock Clock
	// Retryable classifies which errors the supervisor restarts on; any
	// other error is returned immediately. Default: the run died on an
	// injected or real endpoint crash (transport.ErrCrashed).
	Retryable func(error) bool
}

func (c *SupervisorConfig) fill() {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.Clock == nil {
		c.Clock = TimerClock{}
	}
	if c.Retryable == nil {
		c.Retryable = func(err error) bool { return errors.Is(err, transport.ErrCrashed) }
	}
}

// backoff returns the wait before restart number `restart` (1-based):
// capped exponential growth from BackoffBase with seeded jitter in
// [d/2, d], so simultaneously-crashed nodes restart staggered but
// reproducibly.
func backoff(c SupervisorConfig, rng *rand.Rand, restart int) time.Duration {
	d := c.BackoffBase
	for i := 1; i < restart && d < c.BackoffCap; i++ {
		d *= 2
	}
	if d > c.BackoffCap {
		d = c.BackoffCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// Supervise runs `run` until it succeeds, fails non-retryably, or the
// restart budget is exhausted. run receives the attempt number (0 for the
// first run, k for the k-th restart). It returns the number of attempts
// made and the final error; a budget exhaustion wraps both
// ErrRestartBudget and the last run error.
func Supervise(ctx context.Context, cfg SupervisorConfig, run func(ctx context.Context, attempt int) error) (attempts int, err error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for attempt := 0; ; attempt++ {
		err = run(ctx, attempt)
		attempts = attempt + 1
		if err == nil || !cfg.Retryable(err) || ctx.Err() != nil {
			return attempts, err
		}
		if attempt >= cfg.MaxRestarts {
			return attempts, fmt.Errorf("%w: %d restarts did not recover: %w", ErrRestartBudget, cfg.MaxRestarts, err)
		}
		if werr := cfg.Clock.Sleep(ctx, backoff(cfg, rng, attempt+1)); werr != nil {
			return attempts, fmt.Errorf("recovery: backoff interrupted: %w", werr)
		}
	}
}
