package metrics

import (
	"reflect"
	"testing"
)

// FuzzSnapshotDecode proves that arbitrary bytes fed to DecodeSnapshot
// always yield an error or a valid snapshot — never a panic — and that
// anything accepted survives an encode/decode round trip unchanged.
func FuzzSnapshotDecode(f *testing.F) {
	r := New()
	r.Counter("fap_sends_total", "messages sent", L("node", "0")).Add(12)
	r.Gauge("fap_spread", "spread", L("node", "0")).Set(0.25)
	r.Histogram("fap_bytes", "payload bytes", []int64{64, 256}, L("node", "0")).Observe(100)
	valid, err := EncodeJSON(r.Snapshot())
	if err != nil {
		f.Fatalf("encoding seed snapshot: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":[{"name":"a_total","value":-1}]}`))
	f.Add([]byte(`{"histograms":[{"name":"h","bounds":[1],"counts":[0],"sum":0}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode and re-decode to the same value.
		b, err := EncodeJSON(s)
		if err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		s2, err := DecodeSnapshot(b)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed snapshot:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
	})
}
