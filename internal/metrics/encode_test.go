package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds one registry exercising every encoder feature:
// multiple series per family, empty and escaped label values, negative
// and fractional gauges, and histogram buckets including overflow.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("fap_sends_total", "messages sent", L("node", "0")).Add(12)
	r.Counter("fap_sends_total", "messages sent", L("node", "1")).Add(9)
	r.Counter("fap_discards_total", "reports discarded", L("node", "0"), L("reason", "stale_report")).Add(3)
	r.Counter("fap_plain_total", "no labels").Add(1)
	r.Gauge("fap_spread", "marginal-utility spread", L("node", "0")).Set(0.0078125)
	r.Gauge("fap_delta_u", "per-round utility gain", L("node", "0")).Set(-2.5e-07)
	r.Gauge("fap_escaped", "help with \\ backslash\nand newline", L("path", "a\"b\\c\nd")).Set(1)
	h := r.Histogram("fap_bytes", "payload bytes", []int64{64, 256, 1024}, L("node", "0"))
	for _, v := range []int64{10, 64, 65, 300, 5000} {
		h.Observe(v)
	}
	return r
}

func TestEncodeTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeText(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatalf("EncodeText: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "prometheus.golden"), buf.Bytes())
}

func TestEncodeJSONGolden(t *testing.T) {
	b, err := EncodeJSON(goldenRegistry().Snapshot())
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "snapshot.golden.json"), b)
}

// checkGolden compares got against the golden file byte-for-byte,
// rewriting the file under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("creating golden dir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing golden file: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run `go test -update` after verifying):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
