package metrics

import (
	"bytes"
	"net/http"
)

// Handler serves the registry in Prometheus text format. Encoding happens
// against a snapshot, so a scrape never blocks instrument writers for
// longer than the copy.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := EncodeText(&buf, r.Snapshot()); err != nil {
			http.Error(w, "encoding metrics: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
