package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Snapshot is a point-in-time, deep copy of a registry's contents, sorted
// by (name, canonical labels) within each section. Two registries that
// recorded the same events snapshot to deeply equal values and encode to
// byte-identical JSON and Prometheus text, regardless of goroutine
// scheduling — this is the struct the determinism tests pin.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot. Counts has one
// entry per bound plus a final +Inf overflow bucket; entries are
// per-bucket (not cumulative — the text encoder accumulates).
type HistogramPoint struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
}

// Snapshot deep-copies the registry's current contents.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var snap Snapshot
	for _, name := range names {
		fam := r.families[name]
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := fam.series[k]
			labels := append([]Label(nil), s.labels...)
			s.mu.Lock()
			switch fam.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, CounterPoint{
					Name: name, Help: fam.help, Labels: labels, Value: s.intVal,
				})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, GaugePoint{
					Name: name, Help: fam.help, Labels: labels, Value: s.fVal,
				})
			case kindHistogram:
				snap.Histograms = append(snap.Histograms, HistogramPoint{
					Name: name, Help: fam.help, Labels: labels,
					Bounds: append([]int64(nil), fam.bounds...),
					Counts: append([]int64(nil), s.counts...),
					Sum:    s.sum,
				})
			}
			s.mu.Unlock()
		}
	}
	r.mu.Unlock()
	return snap
}

// EncodeJSON renders a snapshot as indented JSON with a trailing newline.
// The encoding is deterministic: struct field order is fixed and the
// snapshot itself is sorted.
func EncodeJSON(s Snapshot) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: encoding snapshot: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeSnapshot parses and validates snapshot JSON produced by
// EncodeJSON. It is strict — unknown fields, malformed names or labels,
// out-of-order or duplicate series, negative counts, and histogram
// shape mismatches are all errors. Corrupt or truncated input yields an
// error, never a panic (fuzzed by FuzzSnapshotDecode).
func DecodeSnapshot(data []byte) (Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: decoding snapshot: %w", err)
	}
	// Exactly one JSON value, nothing trailing.
	if dec.More() {
		return Snapshot{}, fmt.Errorf("metrics: decoding snapshot: trailing data after JSON value")
	}
	if err := validateSnapshot(s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: invalid snapshot: %w", err)
	}
	normalizeSnapshot(&s)
	return s, nil
}

// normalizeSnapshot maps empty slices to nil so that decoded snapshots
// compare equal to re-decoded ones: the omitempty JSON tags drop empty
// sections and label lists on encode, which would otherwise turn
// []Label{} into nil across a round trip.
func normalizeSnapshot(s *Snapshot) {
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	if len(s.Histograms) == 0 {
		s.Histograms = nil
	}
	for i := range s.Counters {
		if len(s.Counters[i].Labels) == 0 {
			s.Counters[i].Labels = nil
		}
	}
	for i := range s.Gauges {
		if len(s.Gauges[i].Labels) == 0 {
			s.Gauges[i].Labels = nil
		}
	}
	for i := range s.Histograms {
		if len(s.Histograms[i].Labels) == 0 {
			s.Histograms[i].Labels = nil
		}
	}
}

// validateSnapshot checks the structural invariants Snapshot() guarantees.
func validateSnapshot(s Snapshot) error {
	seen := make(map[string]string) // name -> section
	var prevKey string
	check := func(section, name string, labels []Label, first bool) (string, error) {
		if err := checkName(name); err != nil {
			return "", err
		}
		canon, sorted, err := canonicalLabels(labels)
		if err != nil {
			return "", fmt.Errorf("%s %s: %w", section, name, err)
		}
		for i := range labels {
			if labels[i] != sorted[i] {
				return "", fmt.Errorf("%s %s: labels not sorted by key", section, name)
			}
		}
		if sec, ok := seen[name]; ok && sec != section {
			return "", fmt.Errorf("name %s appears in both %s and %s sections", name, sec, section)
		}
		seen[name] = section
		key := name + "{" + canon + "}"
		if !first && key <= prevKey {
			return "", fmt.Errorf("%s series %s out of order or duplicated", section, key)
		}
		prevKey = key
		return key, nil
	}
	for i, c := range s.Counters {
		if _, err := check("counter", c.Name, c.Labels, i == 0); err != nil {
			return err
		}
		if c.Value < 0 {
			return fmt.Errorf("counter %s has negative value %d", c.Name, c.Value)
		}
	}
	for i, g := range s.Gauges {
		if _, err := check("gauge", g.Name, g.Labels, i == 0); err != nil {
			return err
		}
	}
	for i, h := range s.Histograms {
		if _, err := check("histogram", h.Name, h.Labels, i == 0); err != nil {
			return err
		}
		if len(h.Bounds) == 0 {
			return fmt.Errorf("histogram %s has no bucket bounds", h.Name)
		}
		for j := 1; j < len(h.Bounds); j++ {
			if h.Bounds[j] <= h.Bounds[j-1] {
				return fmt.Errorf("histogram %s bounds not strictly ascending", h.Name)
			}
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %s has %d counts for %d bounds (want %d)",
				h.Name, len(h.Counts), len(h.Bounds), len(h.Bounds)+1)
		}
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("histogram %s has negative bucket count %d", h.Name, c)
			}
		}
	}
	return nil
}
