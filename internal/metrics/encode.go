package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EncodeText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE header per family followed by its
// series, with cumulative le buckets plus _sum and _count for histograms.
// Output is deterministic: the snapshot is already sorted and floats use
// the shortest round-trip representation.
func EncodeText(w io.Writer, s Snapshot) error {
	var prev string
	for _, c := range s.Counters {
		if err := header(w, &prev, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, labelString(c.Labels, "", 0, false), c.Value); err != nil {
			return err
		}
	}
	prev = ""
	for _, g := range s.Gauges {
		if err := header(w, &prev, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, labelString(g.Labels, "", 0, false), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	prev = ""
	for _, h := range s.Histograms {
		if err := header(w, &prev, h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, labelString(h.Labels, "le", b, false), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, labelString(h.Labels, "le", 0, true), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", h.Name, labelString(h.Labels, "", 0, false), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, labelString(h.Labels, "", 0, false), cum); err != nil {
			return err
		}
	}
	return nil
}

// header writes the # HELP / # TYPE preamble once per family.
func header(w io.Writer, prev *string, name, help, typ string) error {
	if name == *prev {
		return nil
	}
	*prev = name
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// labelString renders {k="v",...}, optionally appending an le bucket
// label ("+Inf" when inf is set). Empty label sets render as "".
func labelString(labels []Label, leKey string, le int64, inf bool) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if inf {
			b.WriteString("+Inf")
		} else {
			b.WriteString(strconv.FormatInt(le, 10))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp applies the help-text escaping rules (backslash and newline).
func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// formatFloat renders a float deterministically with the shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
