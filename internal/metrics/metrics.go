// Package metrics implements a deterministic, dependency-free metrics
// registry for the file-allocation stack: counters, gauges, and
// fixed-bucket histograms with snapshot-on-read.
//
// The registry deliberately diverges from wall-clock-centric metrics
// libraries. Nothing in this package reads the clock — round indices are
// the clock — and a fapvet check (walltime) forbids the "time" import
// here outright. Histograms observe int64 values into fixed int64 bucket
// bounds and keep int64 sums, so observation order cannot change any
// stored value: counters and histogram increments commute exactly, and
// two runs that process the same events produce byte-identical snapshots
// even when goroutine scheduling differs. That property is what lets the
// chaos-churn suite pin workers=1 vs workers=8 registry snapshots with
// deep equality.
//
// Gauges hold float64 values (spread, ΔU, and friends come out of the
// numeric core as floats) and record the last value written. They stay
// deterministic under the single-writer discipline used throughout the
// repo: each gauge series is labelled by node and written only from that
// node's agent goroutine, so "last write" is round-ordered, not
// scheduling-ordered.
//
// Registration is idempotent: asking for the same name and label set
// returns the existing instrument. Conflicting re-registration (same name,
// different kind, help text, or bucket bounds) panics — those are
// programmer errors on the same footing as a duplicate flag name.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds a set of named instrument families. The zero value is not
// usable; call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every label variant of one metric name. Kind, help, and
// (for histograms) bucket bounds are fixed per name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []int64
	series map[string]*series
}

// series is one (name, labels) time series. A single mutex guards all three
// value fields; instruments are thin typed views over it.
type series struct {
	labels    []Label // sorted by key
	boundsRef []int64 // histogram only; aliases the family's immutable bounds

	mu     sync.Mutex
	intVal int64   // counter
	fVal   float64 // gauge
	counts []int64 // histogram: len(bounds)+1, last bucket is +Inf
	sum    int64   // histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically non-decreasing int64 event count.
type Counter struct{ s *series }

// Gauge records the last float64 value written. See the package comment
// for the single-writer discipline that keeps gauges deterministic.
type Gauge struct{ s *series }

// Histogram accumulates int64 observations into fixed int64 buckets.
type Histogram struct{ s *series }

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{s: r.register(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{s: r.register(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or finds) a histogram series with the given strictly
// ascending bucket upper bounds. An implicit +Inf bucket is always added.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly ascending: %v", name, bounds))
		}
	}
	return &Histogram{s: r.register(name, help, kindHistogram, bounds, labels)}
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter; n must be non-negative.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter add of negative value %d", n))
	}
	c.s.mu.Lock()
	c.s.intVal += n
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.intVal
}

// Set records v as the gauge's current value. Non-finite values are
// rejected: they would make the snapshot unencodable as JSON and are never
// legitimate outputs of the numeric core.
func (g *Gauge) Set(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("metrics: non-finite gauge value %v", v))
	}
	g.s.mu.Lock()
	g.s.fVal = v
	g.s.mu.Unlock()
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.fVal
}

// Observe records one int64 observation.
func (h *Histogram) Observe(v int64) {
	h.s.mu.Lock()
	idx := len(h.s.counts) - 1 // +Inf overflow bucket
	for i, b := range h.s.boundsRef {
		if v <= b {
			idx = i
			break
		}
	}
	h.s.counts[idx]++
	h.s.sum += v
	h.s.mu.Unlock()
}

// register implements the get-or-create path shared by all three kinds.
func (r *Registry) register(name, help string, k kind, bounds []int64, labels []Label) *series {
	if err := checkName(name); err != nil {
		panic("metrics: " + err.Error())
	}
	canon, sorted, err := canonicalLabels(labels)
	if err != nil {
		panic(fmt.Sprintf("metrics: %s: %v", name, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{
			name:   name,
			help:   help,
			kind:   k,
			bounds: append([]int64(nil), bounds...),
			series: make(map[string]*series),
		}
		r.families[name] = fam
	} else {
		if fam.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered as %s, previously %s", name, k, fam.kind))
		}
		if fam.help != help {
			panic(fmt.Sprintf("metrics: %s re-registered with different help text", name))
		}
		if k == kindHistogram && !int64SlicesEqual(fam.bounds, bounds) {
			panic(fmt.Sprintf("metrics: histogram %s re-registered with different bounds", name))
		}
	}
	s, ok := fam.series[canon]
	if !ok {
		s = &series{labels: sorted}
		if k == kindHistogram {
			s.counts = make([]int64, len(fam.bounds)+1)
			s.boundsRef = fam.bounds
		}
		fam.series[canon] = s
	}
	return s
}

// checkName enforces the Prometheus metric-name charset.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("invalid metric name %q", name)
	}
	return nil
}

// checkLabelKey enforces the Prometheus label-name charset.
func checkLabelKey(key string) error {
	if key == "" {
		return fmt.Errorf("empty label key")
	}
	for i, c := range key {
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("invalid label key %q", key)
	}
	return nil
}

// canonicalLabels validates the label set, sorts it by key, and renders the
// canonical series key used for lookup and for snapshot ordering.
func canonicalLabels(labels []Label) (canon string, sorted []Label, err error) {
	sorted = append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if err := checkLabelKey(l.Key); err != nil {
			return "", nil, err
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			return "", nil, fmt.Errorf("duplicate label key %q", l.Key)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
	}
	return b.String(), sorted, nil
}

// escapeLabelValue renders a label value with Prometheus text-format
// escaping; it doubles as the canonical-key encoding so values containing
// commas or equals signs cannot collide.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
