package metrics

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterAddAndValue(t *testing.T) {
	r := New()
	c := r.Counter("events_total", "events", L("node", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if got := r.Counter("events_total", "events", L("node", "0")).Value(); got != 5 {
		t.Fatalf("re-registered counter value = %d, want 5", got)
	}
	// Different labels are a distinct series.
	if got := r.Counter("events_total", "events", L("node", "1")).Value(); got != 0 {
		t.Fatalf("fresh series value = %d, want 0", got)
	}
}

func TestGaugeSet(t *testing.T) {
	r := New()
	g := r.Gauge("spread", "gradient spread")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge value = %v, want 0.25", got)
	}
	g.Set(-1.5)
	if got := g.Value(); got != -1.5 {
		t.Fatalf("gauge value = %v, want -1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("bytes", "message bytes", []int64{10, 100})
	for _, v := range []int64{3, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histogram points, want 1", len(snap.Histograms))
	}
	p := snap.Histograms[0]
	wantCounts := []int64{2, 2, 2} // (-inf,10], (10,100], (100,+inf)
	if !reflect.DeepEqual(p.Counts, wantCounts) {
		t.Errorf("bucket counts = %v, want %v", p.Counts, wantCounts)
	}
	if p.Sum != 3+10+11+100+101+5000 {
		t.Errorf("sum = %d, want %d", p.Sum, 3+10+11+100+101+5000)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("1bad", "") }},
		{"bad label key", func(r *Registry) { r.Counter("ok_total", "", L("0bad", "v")) }},
		{"duplicate label key", func(r *Registry) { r.Counter("ok_total", "", L("a", "1"), L("a", "2")) }},
		{"kind conflict", func(r *Registry) { r.Counter("m", "h"); r.Gauge("m", "h") }},
		{"help conflict", func(r *Registry) { r.Counter("m", "h1"); r.Counter("m", "h2") }},
		{"empty bounds", func(r *Registry) { r.Histogram("h", "", nil) }},
		{"unsorted bounds", func(r *Registry) { r.Histogram("h", "", []int64{5, 5}) }},
		{"bounds conflict", func(r *Registry) {
			r.Histogram("h", "", []int64{1, 2})
			r.Histogram("h", "", []int64{1, 3})
		}},
		{"negative counter add", func(r *Registry) { r.Counter("c_total", "").Add(-1) }},
		{"non-finite gauge", func(r *Registry) { r.Gauge("g", "").Set(1.0 / zero()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(New())
		})
	}
}

// zero defeats constant folding so 1.0/zero() builds +Inf at run time
// (the constant expression 1.0/0.0 would not compile).
func zero() float64 { return 0 }

// TestSnapshotDeterministicUnderConcurrency is the core registry contract:
// the same multiset of events recorded under different interleavings must
// snapshot to deeply equal values.
func TestSnapshotDeterministicUnderConcurrency(t *testing.T) {
	build := func(goroutines int) Snapshot {
		r := New()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := r.Counter("ops_total", "ops", L("kind", "send"))
				h := r.Histogram("bytes", "payload bytes", []int64{64, 256, 1024})
				for i := 0; i < 1000; i++ {
					c.Inc()
					h.Observe(int64(i % 1500))
				}
			}()
		}
		wg.Wait()
		return r.Snapshot()
	}
	one := build(1)
	// Scale the single-goroutine run to the same totals for comparison.
	one.Counters[0].Value *= 8
	one.Histograms[0].Sum *= 8
	for i := range one.Histograms[0].Counts {
		one.Histograms[0].Counts[i] *= 8
	}
	eight := build(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("snapshots differ between 1 and 8 goroutines:\n1x8: %+v\n8:   %+v", one, eight)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []int64{1})
	c.Inc()
	h.Observe(1)
	snap := r.Snapshot()
	c.Inc()
	h.Observe(1)
	if snap.Counters[0].Value != 1 {
		t.Errorf("snapshot counter mutated: %d", snap.Counters[0].Value)
	}
	if snap.Histograms[0].Counts[0] != 1 {
		t.Errorf("snapshot histogram mutated: %v", snap.Histograms[0].Counts)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("sends_total", "sends", L("node", "3")).Add(7)
	r.Gauge("spread", "gradient spread", L("node", "3")).Set(0.125)
	r.Histogram("bytes", "payload bytes", []int64{64, 256}, L("node", "3")).Observe(100)
	snap := r.Snapshot()
	b, err := EncodeJSON(snap)
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", snap, got)
	}
}

func TestDecodeSnapshotRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"truncated", `{"counters":[{"name":"a_tot`},
		{"unknown field", `{"bogus":1}`},
		{"trailing data", `{} {}`},
		{"bad name", `{"counters":[{"name":"1bad","value":1}]}`},
		{"negative counter", `{"counters":[{"name":"a_total","value":-1}]}`},
		{"unsorted labels", `{"counters":[{"name":"a_total","labels":[{"key":"b","value":""},{"key":"a","value":""}],"value":1}]}`},
		{"duplicate series", `{"counters":[{"name":"a_total","value":1},{"name":"a_total","value":2}]}`},
		{"name in two sections", `{"counters":[{"name":"a","value":1}],"gauges":[{"name":"a","value":1}]}`},
		{"histogram no bounds", `{"histograms":[{"name":"h","bounds":[],"counts":[0],"sum":0}]}`},
		{"histogram bad shape", `{"histograms":[{"name":"h","bounds":[1,2],"counts":[0,0],"sum":0}]}`},
		{"histogram negative count", `{"histograms":[{"name":"h","bounds":[1],"counts":[0,-1],"sum":0}]}`},
		{"histogram unsorted bounds", `{"histograms":[{"name":"h","bounds":[2,1],"counts":[0,0,0],"sum":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSnapshot([]byte(tc.data)); err == nil {
				t.Fatalf("DecodeSnapshot(%q) succeeded, want error", tc.data)
			}
		})
	}
}
