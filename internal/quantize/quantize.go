// Package quantize rounds the algorithm's real-valued file fractions to
// record boundaries (section 8.1: "a file of records cannot be divided up
// in this manner. The real-number fractions will have to be rounded or
// truncated in some suitable manner so that the file ... will fragment at
// record boundaries"). The largest-remainder method used here conserves
// the record count exactly and is within one record of the ideal fraction
// at every node, so the cost penalty vanishes as the record count grows —
// "the larger the number of records the closer the rounded-off fractions
// will be to the prescribed fractions".
package quantize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput reports invalid quantization input.
var ErrBadInput = errors.New("quantize: invalid input")

// Records rounds the fractional allocation x (non-negative, summing to the
// number of file copies) to whole records out of `records` per copy,
// using the largest-remainder (Hamilton) method: every node first gets
// ⌊x_i·R⌋ records, then the leftover records go to the nodes with the
// largest remainders. Ties break toward the lower node index for
// determinism. The returned counts sum to round(sum(x)·R).
func Records(x []float64, records int) ([]int, error) {
	if records < 1 {
		return nil, fmt.Errorf("%w: %d records", ErrBadInput, records)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("%w: empty allocation", ErrBadInput)
	}
	var sum float64
	for i, v := range x {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: x[%d] = %v", ErrBadInput, i, v)
		}
		sum += v
	}
	total := int(math.Round(sum * float64(records)))
	counts := make([]int, len(x))
	remainders := make([]float64, len(x))
	assigned := 0
	for i, v := range x {
		ideal := v * float64(records)
		counts[i] = int(math.Floor(ideal))
		remainders[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	leftover := total - assigned
	if leftover < 0 {
		// Rounding artifacts (sum slightly below an integer multiple);
		// remove from the smallest remainders.
		leftover = 0
	}
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if remainders[order[a]] != remainders[order[b]] {
			return remainders[order[a]] > remainders[order[b]]
		}
		return order[a] < order[b]
	})
	for k := 0; k < leftover && k < len(order); k++ {
		counts[order[k]]++
	}
	return counts, nil
}

// Fractions converts record counts back to fractions of one copy.
func Fractions(counts []int, records int) ([]float64, error) {
	if records < 1 {
		return nil, fmt.Errorf("%w: %d records", ErrBadInput, records)
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: counts[%d] = %d", ErrBadInput, i, c)
		}
		out[i] = float64(c) / float64(records)
	}
	return out, nil
}

// MaxDeviation returns the largest |x_i − counts_i/R| over the nodes: the
// per-node rounding error, bounded by 1/R for the largest-remainder
// method.
func MaxDeviation(x []float64, counts []int, records int) float64 {
	var worst float64
	for i := range x {
		d := math.Abs(x[i] - float64(counts[i])/float64(records))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// CostPenalty evaluates a cost function at the ideal and quantized
// allocations and returns (quantizedCost − idealCost): the price of
// fragmenting at record boundaries.
func CostPenalty(cost func([]float64) (float64, error), x []float64, counts []int, records int) (float64, error) {
	ideal, err := cost(x)
	if err != nil {
		return 0, fmt.Errorf("quantize: evaluating ideal allocation: %w", err)
	}
	frac, err := Fractions(counts, records)
	if err != nil {
		return 0, err
	}
	quantized, err := cost(frac)
	if err != nil {
		return 0, fmt.Errorf("quantize: evaluating quantized allocation: %w", err)
	}
	return quantized - ideal, nil
}
