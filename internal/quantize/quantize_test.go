package quantize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"filealloc/internal/costmodel"
)

func TestRecordsExactFractions(t *testing.T) {
	counts, err := Records([]float64{0.25, 0.25, 0.25, 0.25}, 100)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	for i, c := range counts {
		if c != 25 {
			t.Errorf("counts[%d] = %d, want 25", i, c)
		}
	}
}

func TestRecordsLargestRemainder(t *testing.T) {
	// 0.4/0.35/0.25 of 10 records: floors 4/3/2 leave one record, which
	// goes to the largest remainder (0.5 at node 1).
	counts, err := Records([]float64{0.4, 0.35, 0.25}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
			break
		}
	}
}

func TestRecordsDeterministicTieBreak(t *testing.T) {
	// Equal remainders: lower index wins.
	counts, err := Records([]float64{0.5, 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", counts)
	}
}

func TestRecordsMultipleCopies(t *testing.T) {
	// Two copies over 4 nodes, 10 records per copy: 20 records total.
	counts, err := Records([]float64{0.7, 0.5, 0.5, 0.3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range counts {
		total += c
	}
	if total != 20 {
		t.Errorf("total records = %d, want 20", total)
	}
}

func TestRecordsValidation(t *testing.T) {
	if _, err := Records([]float64{1}, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero records: error = %v, want ErrBadInput", err)
	}
	if _, err := Records(nil, 10); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: error = %v, want ErrBadInput", err)
	}
	if _, err := Records([]float64{-0.1, 1.1}, 10); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative: error = %v, want ErrBadInput", err)
	}
}

func TestFractions(t *testing.T) {
	frac, err := Fractions([]int{2, 3, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.3, 0.5}
	for i := range want {
		if math.Abs(frac[i]-want[i]) > 1e-12 {
			t.Errorf("frac = %v, want %v", frac, want)
			break
		}
	}
	if _, err := Fractions([]int{-1}, 10); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative count: error = %v, want ErrBadInput", err)
	}
	if _, err := Fractions([]int{1}, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero records: error = %v, want ErrBadInput", err)
	}
}

// TestRecordsProperties: for random allocations, quantization conserves the
// total and stays within one record per node.
func TestRecordsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	prop := func(raw []float64, recRaw uint16) bool {
		records := 1 + int(recRaw)%1000
		n := len(raw)
		if n < 1 {
			return true
		}
		if n > 20 {
			n = 20
		}
		x := make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			v := math.Abs(raw[i])
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
				v = rng.Float64()
			}
			x[i] = v
			sum += v
		}
		if sum == 0 {
			x[0], sum = 1, 1
		}
		for i := range x {
			x[i] /= sum // normalize to one copy
		}
		counts, err := Records(x, records)
		if err != nil {
			return false
		}
		var total int
		for i, c := range counts {
			total += c
			if math.Abs(float64(c)/float64(records)-x[i]) > 1.0/float64(records)+1e-12 {
				return false
			}
		}
		return total == records
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMaxDeviationBound(t *testing.T) {
	x := []float64{0.123, 0.456, 0.421}
	counts, err := Records(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDeviation(x, counts, 50); d > 1.0/50 {
		t.Errorf("deviation %g exceeds one record (%g)", d, 1.0/50)
	}
}

func TestCostPenaltyShrinksWithRecordCount(t *testing.T) {
	// Section 8.1: more records → quantized allocation closer to optimal
	// → smaller cost penalty.
	m, err := costmodel.NewSingleFile([]float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, records := range []int{10, 100, 1000, 10000} {
		counts, err := Records(sol.X, records)
		if err != nil {
			t.Fatal(err)
		}
		penalty, err := CostPenalty(m.Cost, sol.X, counts, records)
		if err != nil {
			t.Fatal(err)
		}
		if penalty < -1e-9 {
			t.Errorf("records=%d: negative penalty %g (quantized beat the optimum?)", records, penalty)
		}
		if penalty > prev+1e-9 {
			t.Errorf("records=%d: penalty %g grew from %g", records, penalty, prev)
		}
		prev = penalty
	}
	if prev > 1e-6 {
		t.Errorf("penalty at 10000 records = %g, want ≈ 0", prev)
	}
}
