// Package estimate provides the online parameter estimators an adaptive
// deployment of the allocation algorithm needs. The paper's section 8:
// "The performance of such an adaptive scheme, however, would crucially
// depend on the ability of all nodes to accurately estimate the values
// for changing system parameters", i.e. the per-node access rates λ_i and
// service characteristics that enter the marginal utilities.
//
// Two estimators are provided: an exponentially-decayed Poisson rate
// estimator (unbiased for a stationary Poisson process, tracks drifting
// rates with a configurable half-life) and a streaming service-time
// moment estimator (mean and second moment, feeding the M/G/1 model of
// internal/costmodel).
package estimate

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParam reports invalid estimator parameters or observations.
var ErrBadParam = errors.New("estimate: invalid parameter")

// RateEstimator estimates the rate of an event process from event
// timestamps using an exponential window: each event contributes
// ω·e^(−ω·age), so for a Poisson(λ) process the estimate is unbiased with
// standard deviation λ·sqrt(ω/(2λ)). Smaller ω (longer half-life) means
// less noise but slower tracking of drift — the classic adaptation
// trade-off the E12 experiment quantifies.
//
// RateEstimator is not safe for concurrent use; wrap it if estimators are
// shared across goroutines.
type RateEstimator struct {
	omega float64 // decay rate, ln2 / half-life
	sum   float64 // Σ e^(−ω(last − t_i))
	last  float64 // time of the most recent update
	start float64 // observation start, for warm-up bias correction
	begun bool
}

// NewRateEstimator returns an estimator whose window half-life is the
// given duration (in the same time unit as the observations), observing
// from time 0.
func NewRateEstimator(halfLife float64) (*RateEstimator, error) {
	return NewRateEstimatorAt(halfLife, 0)
}

// NewRateEstimatorAt returns an estimator observing from the given start
// time. Knowing the start lets Rate correct the warm-up bias: until a few
// half-lives have elapsed the raw exponential window has only accumulated
// the fraction 1 − e^(−ω·T) of its steady-state mass, so the raw estimate
// under-reports the true rate by exactly that factor.
func NewRateEstimatorAt(halfLife, start float64) (*RateEstimator, error) {
	if halfLife <= 0 || math.IsNaN(halfLife) || math.IsInf(halfLife, 0) {
		return nil, fmt.Errorf("%w: half-life = %v", ErrBadParam, halfLife)
	}
	if math.IsNaN(start) || math.IsInf(start, 0) {
		return nil, fmt.Errorf("%w: start time = %v", ErrBadParam, start)
	}
	return &RateEstimator{omega: math.Ln2 / halfLife, start: start, last: start}, nil
}

// Observe records an event at time t. Observations must be
// non-decreasing in time.
func (e *RateEstimator) Observe(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: event time %v", ErrBadParam, t)
	}
	if e.begun && t < e.last {
		return fmt.Errorf("%w: event time %v before %v", ErrBadParam, t, e.last)
	}
	if e.begun {
		e.sum *= math.Exp(-e.omega * (t - e.last))
	}
	e.sum++
	e.last = t
	e.begun = true
	return nil
}

// Rate returns the (warm-up corrected) rate estimate at time now (≥ the
// last observation). Before any observation it returns 0.
func (e *RateEstimator) Rate(now float64) float64 {
	if !e.begun {
		return 0
	}
	age := now - e.last
	if age < 0 {
		age = 0
	}
	raw := e.omega * e.sum * math.Exp(-e.omega*age)
	window := 1 - math.Exp(-e.omega*(now-e.start))
	if window <= 1e-12 {
		return raw
	}
	return raw / window
}

// ServiceEstimator accumulates streaming estimates of a service-time
// distribution's first two moments, the inputs of the Pollaczek–Khinchine
// delay model.
type ServiceEstimator struct {
	n    int
	sum  float64
	sum2 float64
}

// Observe records one service duration.
func (e *ServiceEstimator) Observe(d float64) error {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return fmt.Errorf("%w: service time %v", ErrBadParam, d)
	}
	e.n++
	e.sum += d
	e.sum2 += d * d
	return nil
}

// Count returns the number of observations.
func (e *ServiceEstimator) Count() int { return e.n }

// Mean returns the estimated E[S] (0 before any observation).
func (e *ServiceEstimator) Mean() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sum / float64(e.n)
}

// SecondMoment returns the estimated E[S²].
func (e *ServiceEstimator) SecondMoment() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sum2 / float64(e.n)
}

// Tracker bundles one rate estimator per node, the state an adaptive
// controller keeps. MarkPlanned/Drifted additionally let it act as a
// change detector: a planner snapshots the estimates it planned against,
// and Drifted later reports which nodes have moved enough to warrant a
// re-plan.
type Tracker struct {
	nodes   []*RateEstimator
	planned []float64 // baseline estimates recorded by MarkPlanned; nil until then
}

// NewTracker returns a tracker for n nodes with a common half-life.
func NewTracker(n int, halfLife float64) (*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadParam, n)
	}
	tr := &Tracker{nodes: make([]*RateEstimator, n)}
	for i := range tr.nodes {
		est, err := NewRateEstimator(halfLife)
		if err != nil {
			return nil, err
		}
		tr.nodes[i] = est
	}
	return tr, nil
}

// Observe records an access generated by node at time t.
func (tr *Tracker) Observe(node int, t float64) error {
	if node < 0 || node >= len(tr.nodes) {
		return fmt.Errorf("%w: node %d of %d", ErrBadParam, node, len(tr.nodes))
	}
	return tr.nodes[node].Observe(t)
}

// Rates returns the per-node rate estimates at time now.
func (tr *Tracker) Rates(now float64) []float64 {
	out := make([]float64, len(tr.nodes))
	for i, est := range tr.nodes {
		out[i] = est.Rate(now)
	}
	return out
}

// MarkPlanned snapshots the current per-node rate estimates as the
// baseline Drifted compares against — call it whenever a plan (an
// allocation) is computed from the estimates, so drift is measured
// against the demand the current plan assumed.
func (tr *Tracker) MarkPlanned(now float64) {
	if tr.planned == nil {
		tr.planned = make([]float64, len(tr.nodes))
	}
	for i, est := range tr.nodes {
		tr.planned[i] = est.Rate(now)
	}
}

// DriftExceeds reports whether estimate deviates from baseline by
// strictly more than threshold, relative to the larger of the two:
//
//	|estimate − baseline| > threshold·max(baseline, estimate)
//
// The symmetric scale keeps the test meaningful at both ends: a rate
// collapsing from r to 0 and one appearing from 0 to r both score a
// relative deviation of 1, and two zero rates never drift. Thresholds
// are only discriminating in [0, 1): for non-negative rates the
// deviation never exceeds the scale, so a threshold ≥ 1 flags nothing.
func DriftExceeds(baseline, estimate, threshold float64) bool {
	scale := math.Max(baseline, estimate)
	return math.Abs(estimate-baseline) > threshold*scale
}

// AppendDrifted appends to dst the indices of nodes whose rate estimate
// at time now deviates from the MarkPlanned baseline by strictly more
// than threshold (per DriftExceeds), in ascending node order, and
// returns the extended slice — the allocation-free form of Drifted for
// callers scanning many trackers with a reused buffer. It is an error to
// call it before MarkPlanned or with a threshold outside [0, 1).
func (tr *Tracker) AppendDrifted(dst []int, now, threshold float64) ([]int, error) {
	if threshold < 0 || threshold >= 1 || math.IsNaN(threshold) {
		return dst, fmt.Errorf("%w: drift threshold %v outside [0, 1)", ErrBadParam, threshold)
	}
	if tr.planned == nil {
		return dst, fmt.Errorf("%w: Drifted before MarkPlanned", ErrBadParam)
	}
	for i, est := range tr.nodes {
		if DriftExceeds(tr.planned[i], est.Rate(now), threshold) {
			dst = append(dst, i)
		}
	}
	return dst, nil
}

// Drifted returns the indices of nodes whose rate estimate at time now
// deviates from the MarkPlanned baseline by strictly more than
// threshold. A nil (never non-nil empty) slice means nothing drifted.
func (tr *Tracker) Drifted(now, threshold float64) ([]int, error) {
	return tr.AppendDrifted(nil, now, threshold)
}
