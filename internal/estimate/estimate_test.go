package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRateEstimatorUnbiasedOnPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, lambda := range []float64{0.5, 2, 10} {
		est, err := NewRateEstimator(50 / lambda) // ~50 expected events per half-life
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		for i := 0; i < 20000; i++ {
			now += rng.ExpFloat64() / lambda
			if err := est.Observe(now); err != nil {
				t.Fatal(err)
			}
		}
		got := est.Rate(now)
		if math.Abs(got-lambda) > 0.15*lambda {
			t.Errorf("λ=%g: estimate %g", lambda, got)
		}
	}
}

func TestRateEstimatorTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	est, err := NewRateEstimator(20)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	// Phase 1: rate 1 for 500 time units.
	for now < 500 {
		now += rng.ExpFloat64()
		if err := est.Observe(now); err != nil {
			t.Fatal(err)
		}
	}
	phase1 := est.Rate(now)
	// Phase 2: rate jumps to 5.
	for now < 700 {
		now += rng.ExpFloat64() / 5
		if err := est.Observe(now); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := est.Rate(now)
	if math.Abs(phase1-1) > 0.3 {
		t.Errorf("phase 1 estimate %g, want ≈ 1", phase1)
	}
	if math.Abs(phase2-5) > 1.2 {
		t.Errorf("phase 2 estimate %g, want ≈ 5", phase2)
	}
}

func TestRateEstimatorDecaysWithoutEvents(t *testing.T) {
	// Start far in the past so the warm-up correction factor is ≈ 1 and
	// the pure exponential decay is observable.
	est, err := NewRateEstimatorAt(10, -10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Observe(0); err != nil {
		t.Fatal(err)
	}
	early := est.Rate(1)
	late := est.Rate(100)
	if late >= early {
		t.Errorf("estimate did not decay: %g then %g", early, late)
	}
	// One half-life halves the estimate.
	if r10, r0 := est.Rate(10), est.Rate(0); math.Abs(r10-r0/2) > 1e-9 {
		t.Errorf("half-life decay wrong: %g vs %g/2", r10, r0)
	}
}

func TestRateEstimatorWarmupCorrection(t *testing.T) {
	// After only a fraction of a half-life, the corrected estimate is
	// already unbiased where the raw window would under-report.
	rng := rand.New(rand.NewSource(21))
	const lambda = 4.0
	est, err := NewRateEstimator(1000) // very long half-life
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for now < 100 { // a tenth of the half-life
		now += rng.ExpFloat64() / lambda
		if err := est.Observe(now); err != nil {
			t.Fatal(err)
		}
	}
	got := est.Rate(100)
	if math.Abs(got-lambda) > 0.25*lambda {
		t.Errorf("corrected early estimate %g, want ≈ %g", got, lambda)
	}
}

func TestRateEstimatorValidation(t *testing.T) {
	if _, err := NewRateEstimator(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero half-life: error = %v", err)
	}
	est, err := NewRateEstimator(1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate(5) != 0 {
		t.Error("fresh estimator rate not 0")
	}
	if err := est.Observe(math.NaN()); !errors.Is(err, ErrBadParam) {
		t.Errorf("NaN time: error = %v", err)
	}
	if err := est.Observe(10); err != nil {
		t.Fatal(err)
	}
	if err := est.Observe(5); !errors.Is(err, ErrBadParam) {
		t.Errorf("time regression: error = %v", err)
	}
}

func TestServiceEstimatorMoments(t *testing.T) {
	var est ServiceEstimator
	rng := rand.New(rand.NewSource(13))
	mu := 2.0
	for i := 0; i < 100000; i++ {
		if err := est.Observe(rng.ExpFloat64() / mu); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(est.Mean()-1/mu) > 0.01 {
		t.Errorf("mean = %g, want %g", est.Mean(), 1/mu)
	}
	if math.Abs(est.SecondMoment()-2/(mu*mu)) > 0.02 {
		t.Errorf("E[S²] = %g, want %g", est.SecondMoment(), 2/(mu*mu))
	}
	if est.Count() != 100000 {
		t.Errorf("count = %d", est.Count())
	}
}

func TestServiceEstimatorValidation(t *testing.T) {
	var est ServiceEstimator
	if err := est.Observe(-1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative duration: error = %v", err)
	}
	if est.Mean() != 0 || est.SecondMoment() != 0 {
		t.Error("zero-observation moments not 0")
	}
}

func TestTrackerPerNodeRates(t *testing.T) {
	tr, err := NewTracker(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	trueRates := []float64{0.5, 2, 4}
	clocks := []float64{0, 0, 0}
	for i := 0; i < 30000; i++ {
		node := i % 3
		clocks[node] += rng.ExpFloat64() / trueRates[node]
		// Feed until each clock passes 2000.
		if clocks[node] > 2000 {
			continue
		}
		if err := tr.Observe(node, clocks[node]); err != nil {
			t.Fatal(err)
		}
	}
	rates := tr.Rates(2000)
	for i, want := range trueRates {
		if math.Abs(rates[i]-want) > 0.35*want {
			t.Errorf("node %d: estimate %g, want ≈ %g", i, rates[i], want)
		}
	}
	if err := tr.Observe(9, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad node: error = %v", err)
	}
	if _, err := NewTracker(0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero nodes: error = %v", err)
	}
}
