package estimate

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestDriftExceedsBoundaries pins the comparison at exact threshold
// boundaries: the deviation must be strictly greater than
// threshold·max(baseline, estimate) to count as drift.
func TestDriftExceedsBoundaries(t *testing.T) {
	tests := []struct {
		name               string
		baseline, estimate float64
		threshold          float64
		want               bool
	}{
		// baseline 1 → estimate 2: deviation 1, scale 2, ratio exactly 0.5.
		{"exactly at threshold", 1, 2, 0.5, false},
		{"just below threshold", 1, 2, 0.5000001, false},
		{"just above threshold", 1, 2, 0.4999999, true},
		// Symmetric: collapsing 2 → 1 scores the same ratio.
		{"collapse at threshold", 2, 1, 0.5, false},
		{"collapse above threshold", 2, 1, 0.25, true},
		// A rate appearing from zero has relative deviation exactly 1,
		// so every threshold below 1 flags it.
		{"from zero, high threshold", 0, 0.001, 0.999, true},
		{"to zero", 5, 0, 0.999, true},
		// Two dead nodes never drift, even at threshold 0.
		{"both zero", 0, 0, 0, false},
		// Threshold 0 flags any difference but not equality.
		{"zero threshold equal", 3, 3, 0, false},
		{"zero threshold differs", 3, 3.0000001, 0, true},
	}
	for _, tt := range tests {
		if got := DriftExceeds(tt.baseline, tt.estimate, tt.threshold); got != tt.want {
			t.Errorf("%s: DriftExceeds(%v, %v, %v) = %v, want %v",
				tt.name, tt.baseline, tt.estimate, tt.threshold, got, tt.want)
		}
	}
}

// steadyTracker builds a tracker whose nodes observed periodic events
// over [0, horizon] at the given per-node rates (rate 0 = no events).
func steadyTracker(t *testing.T, rates []float64, horizon float64) *Tracker {
	t.Helper()
	tr, err := NewTracker(len(rates), 16)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	for node, r := range rates {
		m := int(math.Round(r * horizon))
		for k := m - 1; k >= 0; k-- {
			if err := tr.Observe(node, horizon-horizon*float64(k)/float64(m)); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
	}
	return tr
}

func TestTrackerDrifted(t *testing.T) {
	tr := steadyTracker(t, []float64{2, 1, 0}, 64)
	tr.MarkPlanned(64)

	// Nothing has moved since the baseline.
	got, err := tr.Drifted(64, 0.25)
	if err != nil {
		t.Fatalf("Drifted: %v", err)
	}
	if got != nil {
		t.Errorf("no drift: Drifted = %v, want nil", got)
	}

	// Node 1's rate doubles over the next window; node 0 continues at its
	// old rate, node 2 stays silent.
	for k := 127; k >= 0; k-- {
		if err := tr.Observe(0, 128-64*float64(k)/128); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	for k := 127; k >= 0; k-- {
		if err := tr.Observe(1, 128-64*float64(k)/128); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	got, err = tr.Drifted(128, 0.25)
	if err != nil {
		t.Fatalf("Drifted: %v", err)
	}
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("doubled node 1: Drifted = %v, want [1]", got)
	}

	// AppendDrifted reuses the destination without allocating.
	buf := make([]int, 0, 4)
	buf, err = tr.AppendDrifted(buf, 128, 0.25)
	if err != nil {
		t.Fatalf("AppendDrifted: %v", err)
	}
	if !reflect.DeepEqual(buf, []int{1}) {
		t.Errorf("AppendDrifted = %v, want [1]", buf)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		buf = buf[:0]
		var aerr error
		if buf, aerr = tr.AppendDrifted(buf, 128, 0.25); aerr != nil {
			t.Fatal(aerr)
		}
	}); allocs != 0 {
		t.Errorf("AppendDrifted allocated %.1f objects per call, want 0", allocs)
	}

	// Re-marking the moved estimates clears the drift.
	tr.MarkPlanned(128)
	got, err = tr.Drifted(128, 0.25)
	if err != nil {
		t.Fatalf("Drifted: %v", err)
	}
	if got != nil {
		t.Errorf("after MarkPlanned: Drifted = %v, want nil", got)
	}
}

func TestTrackerDriftedErrors(t *testing.T) {
	tr, err := NewTracker(2, 8)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	if _, err := tr.Drifted(1, 0.5); !errors.Is(err, ErrBadParam) {
		t.Errorf("Drifted before MarkPlanned: err = %v, want ErrBadParam", err)
	}
	tr.MarkPlanned(1)
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := tr.Drifted(1, bad); !errors.Is(err, ErrBadParam) {
			t.Errorf("threshold %v: err = %v, want ErrBadParam", bad, err)
		}
	}
	if _, err := tr.Drifted(1, 0); err != nil {
		t.Errorf("threshold 0 is valid, got %v", err)
	}
}
