package transport

import (
	"context"
	"strconv"

	"filealloc/internal/metrics"
)

// meterByteBounds are the payload-size buckets shared by the send and
// receive histograms; protocol reports and updates sit in the low
// hundreds of bytes, so powers of two from 64 up resolve them well.
var meterByteBounds = []int64{64, 128, 256, 512, 1024, 4096}

// MeteredEndpoint wraps an Endpoint and records per-node send/recv
// counters and payload-size histograms into a metrics.Registry. All
// recorded values are integer event counts keyed to messages the wrapped
// endpoint actually accepted or delivered, so two runs with identical
// message flows meter identically regardless of goroutine scheduling.
//
// The wrapper is transparent to crash recovery: if the inner endpoint
// supports Revive (FaultEndpoint does), the metered endpoint forwards it,
// and because the meter holds registry series rather than local state,
// counts are cumulative across crash/revive cycles.
type MeteredEndpoint struct {
	inner Endpoint

	sends     *metrics.Counter
	sendErrs  *metrics.Counter
	recvs     *metrics.Counter
	recvErrs  *metrics.Counter
	sentBytes *metrics.Histogram
	recvBytes *metrics.Histogram
}

var _ Endpoint = (*MeteredEndpoint)(nil)

// NewMeteredEndpoint wraps inner, registering its series under the
// endpoint's node id.
func NewMeteredEndpoint(inner Endpoint, reg *metrics.Registry) *MeteredEndpoint {
	node := metrics.L("node", strconv.Itoa(inner.ID()))
	return &MeteredEndpoint{
		inner: inner,
		sends: reg.Counter("fap_transport_sends_total",
			"payloads accepted by the transport", node),
		sendErrs: reg.Counter("fap_transport_send_errors_total",
			"sends that returned an error", node),
		recvs: reg.Counter("fap_transport_recvs_total",
			"messages delivered to the agent", node),
		recvErrs: reg.Counter("fap_transport_recv_errors_total",
			"receives that returned an error", node),
		sentBytes: reg.Histogram("fap_transport_sent_bytes",
			"payload size of accepted sends", meterByteBounds, node),
		recvBytes: reg.Histogram("fap_transport_recv_bytes",
			"payload size of delivered messages", meterByteBounds, node),
	}
}

func (m *MeteredEndpoint) ID() int    { return m.inner.ID() }
func (m *MeteredEndpoint) Peers() int { return m.inner.Peers() }

func (m *MeteredEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	err := m.inner.Send(ctx, to, payload)
	if err != nil {
		m.sendErrs.Inc()
		return err
	}
	m.sends.Inc()
	m.sentBytes.Observe(int64(len(payload)))
	return nil
}

func (m *MeteredEndpoint) Recv(ctx context.Context) (Message, error) {
	msg, err := m.inner.Recv(ctx)
	if err != nil {
		m.recvErrs.Inc()
		return msg, err
	}
	m.recvs.Inc()
	m.recvBytes.Observe(int64(len(msg.Payload)))
	return msg, nil
}

func (m *MeteredEndpoint) Close() error { return m.inner.Close() }

// Revive forwards to the inner endpoint when it supports crash/revive
// cycles; supervisors revive through the metered wrapper so the registry
// series — and with them the cumulative counts — survive restarts.
func (m *MeteredEndpoint) Revive() {
	if r, ok := m.inner.(interface{ Revive() }); ok {
		r.Revive()
	}
}

// Unwrap exposes the wrapped endpoint (for tests and fault inspection).
func (m *MeteredEndpoint) Unwrap() Endpoint { return m.inner }

// PublishFaultStats copies a FaultStats snapshot into reg as
// fap_transport_faults_total{node,kind} counters. Call it once per
// endpoint after a run completes; the counters are set by a single Add
// from zero, so repeated runs should use fresh registries.
func PublishFaultStats(reg *metrics.Registry, node int, s FaultStats) {
	nl := metrics.L("node", strconv.Itoa(node))
	kinds := []struct {
		kind string
		n    int64
	}{
		{"send_dropped", s.SendDropped},
		{"send_delayed", s.SendDelayed},
		{"send_duplicated", s.SendDuplicated},
		{"send_partitioned", s.SendPartitioned},
		{"recv_dropped", s.RecvDropped},
		{"recv_delayed", s.RecvDelayed},
		{"recv_duplicated", s.RecvDuplicated},
		{"recv_reordered", s.RecvReordered},
		{"recv_partitioned", s.RecvPartitioned},
		{"crashes", s.Crashes},
		{"crash_refused", s.CrashRefused},
	}
	for _, k := range kinds {
		reg.Counter("fap_transport_faults_total",
			"injected transport faults by kind", nl, metrics.L("kind", k.kind)).Add(k.n)
	}
}
