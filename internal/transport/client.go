package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"filealloc/internal/core"
	"filealloc/internal/metrics"
)

// Client errors. ErrOverloaded is backpressure: the bounded in-flight
// window is full and no slot freed before the context expired — the
// caller sheds load instead of growing an unbounded queue. ErrNoReply is
// a per-attempt deadline miss (the peer may be dead, partitioned, or just
// slow). ErrNoCandidates means routing found no alive node to serve from.
var (
	ErrOverloaded   = errors.New("transport: client overloaded")
	ErrNoReply      = errors.New("transport: no reply before deadline")
	ErrNoCandidates = errors.New("transport: no alive candidate nodes")
)

// ClientConfig configures a hardened request/reply client over an
// Endpoint. The client never parses payloads: ReplyID is the injected
// protocol hook (cf. FaultConfig.RoundOf) that extracts the correlation
// ID from reply payloads, keeping this package protocol-agnostic.
type ClientConfig struct {
	// Endpoint carries the traffic. The client owns its Recv side: no
	// other reader may consume from it once the client starts.
	Endpoint Endpoint
	// ReplyID extracts the correlation ID from a reply payload; payloads
	// it reports false for are discarded (and counted).
	ReplyID func(payload []byte) (uint64, bool)
	// RequestTimeout bounds each attempt (send + wait for reply).
	// Default 2s.
	RequestTimeout time.Duration
	// Retries is the number of extra attempts after the first failure.
	// Default 0 (single attempt); Do retries with seeded-jitter capped
	// exponential backoff between attempts.
	Retries int
	// BackoffBase and BackoffCap bound the retry backoff (same shape as
	// recovery.SupervisorConfig: doubling, capped, jittered into
	// [d/2, d]). Defaults 1ms and 50ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed feeds the backoff jitter; same seed, same jitter sequence.
	Seed int64
	// HedgeDelay, when positive, arms DoHedged: if the primary has not
	// replied after this delay, a second request is sent to the fallback
	// node and the first reply wins. Derive it from a measured p99 so
	// hedges only fire on tail-latency requests. Zero disables hedging.
	HedgeDelay time.Duration
	// MaxInFlight bounds concurrently admitted requests (backpressure).
	// Default 256.
	MaxInFlight int
	// DownAfter is the failure-detector threshold: this many consecutive
	// failed attempts (requests or probes) marks a node down; any
	// success marks it up again. Default 3.
	DownAfter int
	// Registry, when non-nil, receives the fap_client_* metric families.
	Registry *metrics.Registry
}

// clientMetrics holds the fap_client_* instruments. A nil registry wires
// every instrument to a private registry so call sites stay unconditional.
type clientMetrics struct {
	requestsOK     *metrics.Counter
	requestsFailed *metrics.Counter
	retries        *metrics.Counter
	hedges         *metrics.Counter
	hedgeWins      *metrics.Counter
	deadlines      *metrics.Counter
	overloads      *metrics.Counter
	nodeDown       *metrics.Counter
	nodeUp         *metrics.Counter
	unmatched      *metrics.Counter
	inflight       *metrics.Gauge
}

func newClientMetrics(reg *metrics.Registry) *clientMetrics {
	if reg == nil {
		reg = metrics.New()
	}
	return &clientMetrics{
		requestsOK:     reg.Counter("fap_client_requests_total", "client requests by outcome", metrics.L("outcome", "ok")),
		requestsFailed: reg.Counter("fap_client_requests_total", "client requests by outcome", metrics.L("outcome", "error")),
		retries:        reg.Counter("fap_client_retries_total", "retry attempts after a failed attempt"),
		hedges:         reg.Counter("fap_client_hedges_total", "hedged second requests fired"),
		hedgeWins:      reg.Counter("fap_client_hedge_wins_total", "hedged requests won by the hedge arm"),
		deadlines:      reg.Counter("fap_client_deadline_misses_total", "attempts that hit the per-request deadline"),
		overloads:      reg.Counter("fap_client_admission_rejects_total", "requests shed by bounded in-flight admission"),
		nodeDown:       reg.Counter("fap_client_node_down_total", "failure-detector down transitions"),
		nodeUp:         reg.Counter("fap_client_node_up_total", "failure-detector up transitions"),
		unmatched:      reg.Counter("fap_client_unmatched_replies_total", "reply payloads with no pending request"),
		inflight:       reg.Gauge("fap_client_inflight", "currently admitted requests"),
	}
}

// Client is the hardened request/reply path over an Endpoint: per-request
// deadlines, seeded-jitter capped retry backoff, optional hedged second
// requests, bounded in-flight admission, and a consecutive-failure
// detector whose alive view feeds Route's degraded-mode fallback. A
// single background goroutine owns Endpoint.Recv and dispatches replies
// to waiters by correlation ID.
type Client struct {
	cfg    ClientConfig
	m      *clientMetrics
	sem    chan struct{}
	closed chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	rng     *rand.Rand
	pending map[uint64]chan []byte
	misses  map[int]int
	down    map[int]bool
	shut    bool
}

// NewClient validates the config and starts the reply-dispatch loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil {
		return nil, fmt.Errorf("transport: client needs an endpoint")
	}
	if cfg.ReplyID == nil {
		return nil, fmt.Errorf("transport: client needs a ReplyID hook")
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("transport: negative retries %d", cfg.Retries)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 50 * time.Millisecond
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	c := &Client{
		cfg:     cfg,
		m:       newClientMetrics(cfg.Registry),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		closed:  make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[uint64]chan []byte),
		misses:  make(map[int]int),
		down:    make(map[int]bool),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(1)
	go c.recvLoop(ctx)
	return c, nil
}

// Close stops the dispatch loop and fails all pending waiters. The
// underlying endpoint is NOT closed — the caller owns it.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.shut {
		c.mu.Unlock()
		return nil
	}
	c.shut = true
	c.mu.Unlock()
	close(c.closed)
	c.cancel()
	c.wg.Wait()
	return nil
}

// recvLoop dispatches reply payloads to their waiting request by
// correlation ID. It exits when the endpoint closes or Close cancels the
// context.
func (c *Client) recvLoop(ctx context.Context) {
	defer c.wg.Done()
	for {
		msg, err := c.cfg.Endpoint.Recv(ctx)
		if err != nil {
			return
		}
		id, ok := c.cfg.ReplyID(msg.Payload)
		if !ok {
			c.m.unmatched.Inc()
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !ok {
			c.m.unmatched.Inc()
			continue
		}
		ch <- msg.Payload
	}
}

// admit takes an in-flight slot, blocking until one frees or the context
// expires (backpressure: the caller sheds load as ErrOverloaded instead
// of queueing without bound).
func (c *Client) admit(ctx context.Context) error {
	select {
	case c.sem <- struct{}{}:
		c.m.inflight.Set(float64(len(c.sem)))
		return nil
	default:
	}
	select {
	case c.sem <- struct{}{}:
		c.m.inflight.Set(float64(len(c.sem)))
		return nil
	case <-ctx.Done():
		c.m.overloads.Inc()
		return fmt.Errorf("%w: %d in flight", ErrOverloaded, c.cfg.MaxInFlight)
	case <-c.closed:
		return ErrClosed
	}
}

func (c *Client) release() {
	<-c.sem
	c.m.inflight.Set(float64(len(c.sem)))
}

// backoff returns the jittered delay before retry attempt a (1-based):
// doubling from BackoffBase, capped at BackoffCap, jittered into
// [d/2, d] from the seeded stream — the same shape as the recovery
// supervisor's restart backoff.
func (c *Client) backoff(a int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < a && d < c.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	c.mu.Lock()
	jitter := c.rng.Int63n(int64(d/2) + 1)
	c.mu.Unlock()
	return d/2 + time.Duration(jitter)
}

// Do sends payload to node `to` and waits for the reply carrying `id`,
// retrying failed attempts (deadline miss, transport error) up to
// cfg.Retries times with backoff. The caller assigns `id` and must encode
// it inside the payload so the peer can echo it.
func (c *Client) Do(ctx context.Context, to int, id uint64, payload []byte) ([]byte, error) {
	if err := c.admit(ctx); err != nil {
		return nil, err
	}
	defer c.release()
	var lastErr error
	for a := 0; a <= c.cfg.Retries; a++ {
		if a > 0 {
			c.m.retries.Inc()
			if err := sleepCtx(ctx, c.backoff(a)); err != nil {
				break
			}
		}
		reply, err := c.attempt(ctx, to, id, payload)
		if err == nil {
			c.observeOutcome(to, true)
			c.m.requestsOK.Inc()
			return reply, nil
		}
		lastErr = err
		if ctx.Err() != nil || errors.Is(err, ErrClosed) {
			break
		}
	}
	c.observeOutcome(to, false)
	c.m.requestsFailed.Inc()
	return nil, lastErr
}

// SetHedgeDelay retunes the hedge delay at runtime — e.g. re-derived
// each tick from a measured p99 so hedges fire only on tail-latency
// requests. Zero or negative disables hedging.
func (c *Client) SetHedgeDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.HedgeDelay = d
}

func (c *Client) hedgeDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.HedgeDelay
}

// Probe is a single heartbeat attempt: no admission (probes must not be
// starved by request backpressure), no retries, outcome fed straight to
// the failure detector.
func (c *Client) Probe(ctx context.Context, to int, id uint64, payload []byte) ([]byte, error) {
	reply, err := c.attempt(ctx, to, id, payload)
	c.observeOutcome(to, err == nil)
	return reply, err
}

// DoHedged sends the primary request and, if no reply arrives within
// cfg.HedgeDelay, fires the hedge request at the fallback node; the first
// successful reply wins. The two requests need distinct correlation IDs
// (and payloads carrying them) because both may complete. With hedging
// disabled (HedgeDelay == 0) it degrades to Do on the primary. Returns
// the winning reply and the node it came from.
func (c *Client) DoHedged(ctx context.Context, primary, fallback int, id uint64, payload []byte, hedgeID uint64, hedgePayload []byte) ([]byte, int, error) {
	delay := c.hedgeDelay()
	if delay <= 0 || fallback == primary {
		b, err := c.Do(ctx, primary, id, payload)
		return b, primary, err
	}
	if err := c.admit(ctx); err != nil {
		return nil, primary, err
	}
	defer c.release()

	results := make(chan armResult, 2)
	c.wg.Add(1)
	go c.runArm(ctx, primary, id, payload, results)

	hedgeTimer := time.NewTimer(delay)
	defer hedgeTimer.Stop()
	launchHedge := func() {
		c.m.hedges.Inc()
		c.wg.Add(1)
		go c.runArm(ctx, fallback, hedgeID, hedgePayload, results)
	}
	outstanding := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				c.m.requestsOK.Inc()
				if r.node == fallback {
					c.m.hedgeWins.Inc()
				}
				return r.payload, r.node, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if !hedged {
				// The primary failed before the hedge delay elapsed:
				// fire the hedge immediately as the fallback attempt.
				hedged = true
				hedgeTimer.Stop()
				launchHedge()
				outstanding++
				continue
			}
			if outstanding == 0 {
				c.m.requestsFailed.Inc()
				return nil, r.node, firstErr
			}
		case <-hedgeTimer.C:
			hedged = true
			launchHedge()
			outstanding++
		case <-ctx.Done():
			c.m.requestsFailed.Inc()
			return nil, primary, ctx.Err()
		case <-c.closed:
			return nil, primary, ErrClosed
		}
	}
}

// armResult is one hedge arm's outcome.
type armResult struct {
	payload []byte
	node    int
	err     error
}

// runArm runs one hedge arm; the buffered results channel never blocks,
// so the goroutine exits as soon as its attempt resolves (and attempt
// itself unblocks on ctx cancel or Close).
func (c *Client) runArm(ctx context.Context, to int, id uint64, payload []byte, results chan<- armResult) {
	defer c.wg.Done()
	b, err := c.attempt(ctx, to, id, payload)
	c.observeOutcome(to, err == nil)
	results <- armResult{payload: b, node: to, err: err}
}

// attempt is one send + bounded wait for the correlated reply.
func (c *Client) attempt(ctx context.Context, to int, id uint64, payload []byte) ([]byte, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.shut {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.pending[id] == ch {
			delete(c.pending, id)
		}
		c.mu.Unlock()
	}()
	if err := c.cfg.Endpoint.Send(ctx, to, payload); err != nil {
		return nil, err
	}
	timer := time.NewTimer(c.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case b := <-ch:
		return b, nil
	case <-timer.C:
		c.m.deadlines.Inc()
		return nil, fmt.Errorf("%w: node %d after %v", ErrNoReply, to, c.cfg.RequestTimeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, ErrClosed
	}
}

// observeOutcome feeds the consecutive-failure detector: DownAfter
// straight failures mark a node down, any success marks it up.
func (c *Client) observeOutcome(node int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.misses[node] = 0
		if c.down[node] {
			delete(c.down, node)
			c.m.nodeUp.Inc()
		}
		return
	}
	c.misses[node]++
	if !c.down[node] && c.misses[node] >= c.cfg.DownAfter {
		c.down[node] = true
		c.m.nodeDown.Inc()
	}
}

// Down reports the failure detector's verdict for a node.
func (c *Client) Down(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[node]
}

// AliveView snapshots the detector's alive set over the endpoint's peers
// plus the local node, as a dense []bool indexed by node ID. Callers
// snapshot once per tick and route against the copy, so routing decisions
// stay deterministic within a tick even as the detector updates.
func (c *Client) AliveView(n int) []bool {
	alive := make([]bool, n)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range alive {
		alive[i] = !c.down[i]
	}
	return alive
}

// SetDown overrides the detector for one node (e.g. a controller that
// learned of a crash out of band).
func (c *Client) SetDown(node int, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if down {
		if !c.down[node] {
			c.down[node] = true
			c.m.nodeDown.Inc()
		}
		if c.misses[node] < c.cfg.DownAfter {
			c.misses[node] = c.cfg.DownAfter
		}
		return
	}
	if c.down[node] {
		delete(c.down, node)
		c.misses[node] = 0
		c.m.nodeUp.Inc()
	}
}

// Route picks a serving node from plan weights by an inverse-CDF draw
// u ∈ [0, 1): dead candidates (alive[i] == false) and the avoid node
// (pass -1 for none) are zeroed and the survivors renormalized via
// core.Renormalize — degraded mode serves from surviving replicas
// instead of erroring. When every surviving weight is zero (the plan put
// all mass on dead nodes) the draw falls back to uniform over the alive
// set. Pure function: deterministic for a given (weights, alive, u).
func Route(weights []float64, alive []bool, avoid int, u float64) (int, error) {
	if len(weights) != len(alive) {
		return 0, fmt.Errorf("transport: route dimensions differ: %d weights, %d alive", len(weights), len(alive))
	}
	w := make([]float64, len(weights))
	var group []int
	for i := range weights {
		if !alive[i] || i == avoid {
			continue
		}
		if weights[i] > 0 {
			w[i] = weights[i]
			group = append(group, i)
		}
	}
	if len(group) == 0 {
		// Uniform over alive survivors.
		for i := range alive {
			if alive[i] && i != avoid {
				w[i] = 1
				group = append(group, i)
			}
		}
	}
	if len(group) == 0 {
		return 0, ErrNoCandidates
	}
	if err := core.Renormalize(w, group); err != nil {
		return 0, fmt.Errorf("transport: route renormalize: %w", err)
	}
	sort.Ints(group)
	acc := 0.0
	for _, gi := range group {
		acc += w[gi]
		if u < acc {
			return gi, nil
		}
	}
	return group[len(group)-1], nil
}
