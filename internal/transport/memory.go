package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// memoryBufferSize bounds each endpoint's inbox. The allocation protocol
// sends at most one message per peer per round, so a full round fits with
// room for one round of pipelining; senders block (providing natural
// back-pressure) if a receiver falls further behind.
const memoryBufferSize = 256

// MemoryNetwork is an in-process cluster of endpoints connected by
// channels. It is deterministic apart from goroutine scheduling of the
// users themselves, and supports seeded message-loss injection for failure
// tests.
type MemoryNetwork struct {
	mu        sync.Mutex
	endpoints []*memoryEndpoint
	dropRate  float64
	rng       *rand.Rand
	bufSize   int
	closed    bool
}

// MemoryOption configures a MemoryNetwork.
type MemoryOption func(*MemoryNetwork)

// WithDropRate makes the network lose each message independently with the
// given probability, using the seeded source for reproducibility. Lost
// messages report ErrDropped to the sender, modelling a send that is known
// to have failed (e.g. a broken connection).
func WithDropRate(rate float64, seed int64) MemoryOption {
	return func(n *MemoryNetwork) {
		n.dropRate = rate
		n.rng = rand.New(rand.NewSource(seed))
	}
}

// WithBufferSize overrides the per-endpoint inbox capacity. The default
// suits the one-message-per-peer-per-round broadcast protocol; a
// thousand-node broadcast reference run needs room for a full fan-in
// (N−1 reports land in the coordinator's inbox at once) or senders
// deadlock against each other's blocked Sends.
func WithBufferSize(n int) MemoryOption {
	return func(net *MemoryNetwork) {
		if n > 0 {
			net.bufSize = n
		}
	}
}

// NewMemoryNetwork creates a cluster of n connected endpoints.
func NewMemoryNetwork(n int, opts ...MemoryOption) (*MemoryNetwork, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: cluster needs at least one node, got %d", n)
	}
	net := &MemoryNetwork{bufSize: memoryBufferSize}
	for _, opt := range opts {
		opt(net)
	}
	net.endpoints = make([]*memoryEndpoint, n)
	for i := 0; i < n; i++ {
		net.endpoints[i] = &memoryEndpoint{
			id:    i,
			net:   net,
			inbox: make(chan Message, net.bufSize),
			done:  make(chan struct{}),
		}
	}
	return net, nil
}

// Endpoint returns node id's endpoint.
func (n *MemoryNetwork) Endpoint(id int) (Endpoint, error) {
	if id < 0 || id >= len(n.endpoints) {
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(n.endpoints))
	}
	return n.endpoints[id], nil
}

// Close shuts down every endpoint.
func (n *MemoryNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.close()
	}
	return nil
}

// drop reports whether this message should be lost.
func (n *MemoryNetwork) drop() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng != nil && n.dropRate > 0 && n.rng.Float64() < n.dropRate
}

type memoryEndpoint struct {
	id    int
	net   *MemoryNetwork
	inbox chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Endpoint = (*memoryEndpoint)(nil)

func (e *memoryEndpoint) ID() int    { return e.id }
func (e *memoryEndpoint) Peers() int { return len(e.net.endpoints) }

func (e *memoryEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if to < 0 || to >= len(e.net.endpoints) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, to, len(e.net.endpoints))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	if e.net.drop() {
		return fmt.Errorf("%w: %d -> %d", ErrDropped, e.id, to)
	}
	dst := e.net.endpoints[to]
	msg := Message{From: e.id, Payload: append([]byte(nil), payload...)}
	select {
	case dst.inbox <- msg:
		return nil
	case <-dst.done:
		return fmt.Errorf("transport: peer %d closed: %w", to, ErrClosed)
	case <-ctx.Done():
		return fmt.Errorf("transport: sending %d -> %d: %w", e.id, to, ctx.Err())
	}
}

func (e *memoryEndpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		// Drain any residual buffered message before reporting closed.
		select {
		case msg := <-e.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	case <-ctx.Done():
		return Message{}, fmt.Errorf("transport: receiving at %d: %w", e.id, ctx.Err())
	}
}

func (e *memoryEndpoint) Close() error {
	e.close()
	return nil
}

func (e *memoryEndpoint) close() {
	e.closeOnce.Do(func() { close(e.done) })
}
