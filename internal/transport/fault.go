package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultDrop discards a message and reports ErrDropped to the sender
	// (a detectable loss, like a failed write — the retry path sees it).
	FaultDrop FaultKind = iota
	// FaultDelay holds a message for the rule's Delay before passing it
	// on.
	FaultDelay
	// FaultDuplicate delivers a message once plus Copies extra times
	// (default one extra).
	FaultDuplicate
	// FaultReorder holds a received message briefly and delivers its
	// successor first, swapping adjacent arrivals. Receive direction
	// only: an agent's sends are sequential, so delaying one send cannot
	// invert their order.
	FaultReorder
	// FaultPartition silently swallows traffic — the sender observes
	// success (as with a black-holed TCP write buffered by the kernel)
	// and the receiver sees nothing, so only a round timeout reveals it.
	FaultPartition
	// FaultCrash kills the endpoint: the first matching Send or Recv
	// trips the crash, and every operation from that point on fails with
	// ErrCrashed until Revive is called — the supervisor's model of a
	// process dying mid-round. Messages already queued by the wrapped
	// endpoint survive the crash (peers' sends were accepted by the
	// network layer), so a revived endpoint resumes reading where the
	// dead process would have, exactly like a restart reading a durable
	// transport buffer. Each crash rule fires at most once per endpoint —
	// a process dies once, and after Revive the endpoint models a fresh
	// process the spent rule no longer applies to; install several rules
	// to kill a node repeatedly. Nodes and FromRound/ToRound make the
	// kill per-node, per-round triggerable.
	FaultCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultPartition:
		return "partition"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultDirection selects which side of the endpoint a rule intercepts.
type FaultDirection int

const (
	// DirSend applies the rule to outgoing messages.
	DirSend FaultDirection = 1 << iota
	// DirRecv applies the rule to incoming messages.
	DirRecv
	// DirBoth applies the rule in both directions.
	DirBoth = DirSend | DirRecv
)

// FaultRule describes one injected fault. Selector fields narrow where it
// bites: Nodes restricts the endpoints it is installed on (nil = every
// node), Peers restricts the remote side of the message (nil = every
// peer; for sends the destination, for receives the origin), and
// FromRound/ToRound bound the protocol rounds it covers (both zero =
// every round; ToRound zero alone = open-ended). Round scoping needs
// FaultConfig.RoundOf. Probability zero means the rule always fires;
// otherwise it fires with that probability from the endpoint's seeded
// stream, so a given (seed, rule set) replays identically.
type FaultRule struct {
	Kind        FaultKind
	Direction   FaultDirection // zero value means DirBoth
	Nodes       []int
	Peers       []int
	Probability float64
	Delay       time.Duration // FaultDelay: added latency; FaultReorder: hold window (default 2ms)
	Copies      int           // FaultDuplicate: extra deliveries (default 1)
	FromRound   int
	ToRound     int
}

// direction resolves the zero value to DirBoth.
func (r FaultRule) direction() FaultDirection {
	if r.Direction == 0 {
		return DirBoth
	}
	return r.Direction
}

// FaultConfig configures a FaultEndpoint.
type FaultConfig struct {
	// Seed makes every probabilistic decision reproducible. Each wrapped
	// endpoint derives its own stream from Seed and its node id.
	Seed int64
	// Rules are evaluated in order; the first rule that matches a
	// message and passes its probability draw is applied and the rest
	// are skipped.
	Rules []FaultRule
	// RoundOf extracts the protocol round from a payload so rules can be
	// scoped to round windows without this package importing the
	// protocol; protocol.RoundOf is the canonical implementation.
	// Messages whose round cannot be determined only match rules with no
	// round window.
	RoundOf func(payload []byte) (int, bool)
}

// Validate reports configuration errors eagerly, before a malformed rule
// silently never fires inside a chaos run.
func (c FaultConfig) Validate() error {
	for i, r := range c.Rules {
		switch r.Kind {
		case FaultDrop, FaultDelay, FaultDuplicate, FaultReorder, FaultPartition, FaultCrash:
		default:
			return fmt.Errorf("transport: fault rule %d: unknown kind %d", i, int(r.Kind))
		}
		if r.direction()&DirBoth == 0 {
			return fmt.Errorf("transport: fault rule %d: invalid direction %d", i, int(r.Direction))
		}
		if r.Kind == FaultReorder && r.Direction == DirSend {
			return fmt.Errorf("transport: fault rule %d: reorder applies to the receive direction only", i)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("transport: fault rule %d: probability %g outside [0,1]", i, r.Probability)
		}
		if r.Delay < 0 {
			return fmt.Errorf("transport: fault rule %d: negative delay %v", i, r.Delay)
		}
		if r.Copies < 0 {
			return fmt.Errorf("transport: fault rule %d: negative copies %d", i, r.Copies)
		}
		if r.FromRound < 0 || r.ToRound < 0 {
			return fmt.Errorf("transport: fault rule %d: negative round bound", i)
		}
		if r.ToRound != 0 && r.ToRound < r.FromRound {
			return fmt.Errorf("transport: fault rule %d: round window [%d,%d] is empty", i, r.FromRound, r.ToRound)
		}
		if (r.FromRound != 0 || r.ToRound != 0) && c.RoundOf == nil {
			return fmt.Errorf("transport: fault rule %d: round window requires FaultConfig.RoundOf", i)
		}
	}
	return nil
}

// FaultStats is a snapshot of the faults a FaultEndpoint injected.
type FaultStats struct {
	SendDropped     int64 // sends failed with ErrDropped
	SendDelayed     int64
	SendDuplicated  int64 // extra copies emitted
	SendPartitioned int64 // sends silently swallowed
	RecvDropped     int64 // receives silently discarded
	RecvDelayed     int64
	RecvDuplicated  int64 // extra copies delivered
	RecvReordered   int64 // adjacent pairs swapped
	RecvPartitioned int64 // receives swallowed by a partition rule
	Crashes         int64 // crash transitions tripped by a FaultCrash rule
	CrashRefused    int64 // Send/Recv calls refused while crashed
}

// Total sums every injected fault.
func (s FaultStats) Total() int64 {
	return s.SendDropped + s.SendDelayed + s.SendDuplicated + s.SendPartitioned +
		s.RecvDropped + s.RecvDelayed + s.RecvDuplicated + s.RecvReordered + s.RecvPartitioned +
		s.Crashes + s.CrashRefused
}

// Add accumulates another snapshot (aggregating a cluster's endpoints).
func (s *FaultStats) Add(o FaultStats) {
	s.SendDropped += o.SendDropped
	s.SendDelayed += o.SendDelayed
	s.SendDuplicated += o.SendDuplicated
	s.SendPartitioned += o.SendPartitioned
	s.RecvDropped += o.RecvDropped
	s.RecvDelayed += o.RecvDelayed
	s.RecvDuplicated += o.RecvDuplicated
	s.RecvReordered += o.RecvReordered
	s.RecvPartitioned += o.RecvPartitioned
	s.Crashes += o.Crashes
	s.CrashRefused += o.CrashRefused
}

// FaultEndpoint composes over any Endpoint and injects the configured
// faults deterministically. It is safe for the same concurrent use as
// the wrapped endpoint.
type FaultEndpoint struct {
	inner Endpoint
	cfg   FaultConfig

	rngMu sync.Mutex
	rng   *rand.Rand

	statsMu sync.Mutex
	stats   FaultStats

	// recvMu guards the reorder hold slot and the ready queue (released
	// held messages and duplicate copies awaiting delivery).
	recvMu       sync.Mutex
	held         *Message
	heldDeadline time.Time
	ready        []Message

	// crashMu guards the injected-crash flag and the per-rule
	// spent markers (a crash rule fires at most once).
	crashMu sync.Mutex
	crashed bool
	spent   []bool
}

var _ Endpoint = (*FaultEndpoint)(nil)

// NewFaultEndpoint wraps inner with the configured fault rules. The
// wrapped endpoint keeps sole ownership of the connection: callers must
// stop using inner directly.
func NewFaultEndpoint(inner Endpoint, cfg FaultConfig) (*FaultEndpoint, error) {
	if inner == nil {
		return nil, errors.New("transport: nil inner endpoint")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Derive a per-node stream so a cluster sharing one FaultConfig does
	// not hand every node identical draws.
	seed := cfg.Seed*2654435761 + int64(inner.ID()) + 1
	return &FaultEndpoint{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		spent: make([]bool, len(cfg.Rules)),
	}, nil
}

// ID implements Endpoint.
func (e *FaultEndpoint) ID() int { return e.inner.ID() }

// Peers implements Endpoint.
func (e *FaultEndpoint) Peers() int { return e.inner.Peers() }

// Close implements Endpoint.
func (e *FaultEndpoint) Close() error { return e.inner.Close() }

// Stats returns a snapshot of the injected-fault counters.
func (e *FaultEndpoint) Stats() FaultStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// Crashed reports whether an injected crash has killed the endpoint.
func (e *FaultEndpoint) Crashed() bool {
	e.crashMu.Lock()
	defer e.crashMu.Unlock()
	return e.crashed
}

// Revive clears an injected crash so a supervised restart can reuse the
// endpoint. Messages queued by the wrapped endpoint while crashed are
// delivered on the next Recv. Reviving a live endpoint is a no-op.
func (e *FaultEndpoint) Revive() {
	e.crashMu.Lock()
	e.crashed = false
	e.crashMu.Unlock()
}

// crash trips the injected-crash state, marks the tripping rule spent,
// and returns ErrCrashed annotated with the tripping operation.
func (e *FaultEndpoint) crash(op string, ruleIdx int) error {
	e.crashMu.Lock()
	e.crashed = true
	if ruleIdx >= 0 && ruleIdx < len(e.spent) {
		e.spent[ruleIdx] = true
	}
	e.crashMu.Unlock()
	e.count(func(s *FaultStats) { s.Crashes++ })
	return fmt.Errorf("%w: injected crash during %s on node %d", ErrCrashed, op, e.inner.ID())
}

// refuseIfCrashed reports the crashed state as an operation failure.
func (e *FaultEndpoint) refuseIfCrashed() error {
	e.crashMu.Lock()
	dead := e.crashed
	e.crashMu.Unlock()
	if !dead {
		return nil
	}
	e.count(func(s *FaultStats) { s.CrashRefused++ })
	return fmt.Errorf("%w: node %d is down", ErrCrashed, e.inner.ID())
}

func (e *FaultEndpoint) count(f func(*FaultStats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// match finds the first rule that applies to a message in the given
// direction and passes its probability draw. The returned index
// identifies the rule within the config (crash rules are one-shot and
// need their spent marker set when they fire).
func (e *FaultEndpoint) match(dir FaultDirection, peer int, payload []byte) (FaultRule, int, bool) {
	round, haveRound := -1, false
	if e.cfg.RoundOf != nil {
		round, haveRound = e.cfg.RoundOf(payload)
	}
	for i, r := range e.cfg.Rules {
		if r.direction()&dir == 0 {
			continue
		}
		if r.Kind == FaultCrash {
			e.crashMu.Lock()
			used := e.spent[i]
			e.crashMu.Unlock()
			if used {
				continue
			}
		}
		if r.Kind == FaultReorder && dir == DirSend {
			continue
		}
		if len(r.Nodes) > 0 && !containsInt(r.Nodes, e.inner.ID()) {
			continue
		}
		if len(r.Peers) > 0 && !containsInt(r.Peers, peer) {
			continue
		}
		if r.FromRound != 0 || r.ToRound != 0 {
			if !haveRound {
				continue
			}
			if round < r.FromRound || (r.ToRound != 0 && round > r.ToRound) {
				continue
			}
		}
		if r.Probability > 0 {
			e.rngMu.Lock()
			hit := e.rng.Float64() < r.Probability
			e.rngMu.Unlock()
			if !hit {
				continue
			}
		}
		return r, i, true
	}
	return FaultRule{}, -1, false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Send implements Endpoint, applying send-direction rules.
func (e *FaultEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if err := e.refuseIfCrashed(); err != nil {
		return err
	}
	rule, ruleIdx, ok := e.match(DirSend, to, payload)
	if !ok {
		return e.inner.Send(ctx, to, payload)
	}
	switch rule.Kind {
	case FaultCrash:
		return e.crash("send", ruleIdx)
	case FaultDrop:
		e.count(func(s *FaultStats) { s.SendDropped++ })
		return fmt.Errorf("%w: injected drop to node %d", ErrDropped, to)
	case FaultPartition:
		e.count(func(s *FaultStats) { s.SendPartitioned++ })
		return nil
	case FaultDelay:
		e.count(func(s *FaultStats) { s.SendDelayed++ })
		if err := sleepCtx(ctx, rule.Delay); err != nil {
			return err
		}
		return e.inner.Send(ctx, to, payload)
	case FaultDuplicate:
		copies := rule.Copies
		if copies == 0 {
			copies = 1
		}
		if err := e.inner.Send(ctx, to, payload); err != nil {
			return err
		}
		for i := 0; i < copies; i++ {
			if err := e.inner.Send(ctx, to, payload); err != nil {
				return err
			}
			e.count(func(s *FaultStats) { s.SendDuplicated++ })
		}
		return nil
	default:
		return e.inner.Send(ctx, to, payload)
	}
}

// reorderHold is the default time a reorder rule holds a message waiting
// for a successor to swap with.
const reorderHold = 2 * time.Millisecond

// Recv implements Endpoint, applying receive-direction rules. A held
// (reordering) message is delivered after its hold window even when no
// successor arrives, so reordering never turns into loss or a hang.
func (e *FaultEndpoint) Recv(ctx context.Context) (Message, error) {
	for {
		if err := e.refuseIfCrashed(); err != nil {
			return Message{}, err
		}
		// Queued deliveries (duplicate copies, swapped messages) first.
		e.recvMu.Lock()
		if len(e.ready) > 0 {
			msg := e.ready[0]
			e.ready = e.ready[1:]
			e.recvMu.Unlock()
			return msg, nil
		}
		heldMsg := e.held
		heldDeadline := e.heldDeadline
		e.recvMu.Unlock()

		recvCtx, cancel := ctx, context.CancelFunc(nil)
		if heldMsg != nil {
			recvCtx, cancel = context.WithDeadline(ctx, heldDeadline)
		}
		msg, err := e.inner.Recv(recvCtx)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			// If only the hold window expired, release the held message
			// in its original position — nothing arrived to swap with.
			if heldMsg != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				e.recvMu.Lock()
				if e.held == heldMsg {
					e.held = nil
					e.recvMu.Unlock()
					return *heldMsg, nil
				}
				e.recvMu.Unlock()
				continue
			}
			return Message{}, err
		}

		rule, ruleIdx, ok := e.match(DirRecv, msg.From, msg.Payload)
		if !ok {
			return e.deliver(msg)
		}
		switch rule.Kind {
		case FaultCrash:
			// The message that tripped the crash dies with the
			// process — it was read but never acted on.
			return Message{}, e.crash("recv", ruleIdx)
		case FaultDrop:
			e.count(func(s *FaultStats) { s.RecvDropped++ })
			continue
		case FaultPartition:
			e.count(func(s *FaultStats) { s.RecvPartitioned++ })
			continue
		case FaultDelay:
			e.count(func(s *FaultStats) { s.RecvDelayed++ })
			if err := sleepCtx(ctx, rule.Delay); err != nil {
				return Message{}, err
			}
			return e.deliver(msg)
		case FaultDuplicate:
			copies := rule.Copies
			if copies == 0 {
				copies = 1
			}
			e.recvMu.Lock()
			for i := 0; i < copies; i++ {
				e.ready = append(e.ready, msg)
			}
			e.recvMu.Unlock()
			e.count(func(s *FaultStats) { s.RecvDuplicated += int64(copies) })
			return e.deliver(msg)
		case FaultReorder:
			hold := rule.Delay
			if hold == 0 {
				hold = reorderHold
			}
			e.recvMu.Lock()
			if e.held == nil {
				m := msg
				e.held = &m
				e.heldDeadline = time.Now().Add(hold)
				e.recvMu.Unlock()
				continue
			}
			e.recvMu.Unlock()
			// A message is already held: deliver the newer one now and
			// release the held one next — adjacent order swapped.
			return e.deliver(msg)
		default:
			return e.deliver(msg)
		}
	}
}

// deliver returns msg, first releasing any reorder-held predecessor into
// the ready queue behind it (completing the swap).
func (e *FaultEndpoint) deliver(msg Message) (Message, error) {
	e.recvMu.Lock()
	if e.held != nil {
		e.ready = append(e.ready, *e.held)
		e.held = nil
		e.statsMu.Lock()
		e.stats.RecvReordered++
		e.statsMu.Unlock()
	}
	e.recvMu.Unlock()
	return msg, nil
}

// sleepCtx pauses for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
