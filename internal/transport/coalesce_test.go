package transport

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestCoalescerBatchesPerPeer(t *testing.T) {
	net, err := NewMemoryNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	ep2, _ := net.Endpoint(2)
	c := NewCoalescer(ep0)
	rc1 := NewCoalescer(ep1)
	rc2 := NewCoalescer(ep2)

	ctx := context.Background()
	// Three messages to node 1 (one batch), one to node 2 (pass-through).
	for _, m := range []string{"alpha", "beta", "gamma"} {
		if err := c.Send(ctx, 1, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(ctx, 2, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	var got []string
	for i := 0; i < 3; i++ {
		msg, err := rc1.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if msg.From != 0 {
			t.Fatalf("message from %d, want 0", msg.From)
		}
		got = append(got, string(msg.Payload))
	}
	if want := []string{"alpha", "beta", "gamma"}; !reflect.DeepEqual(got, want) {
		t.Errorf("batched messages arrived as %v, want %v", got, want)
	}
	msg, err := rc2.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "solo" {
		t.Errorf("pass-through payload = %q, want %q", msg.Payload, "solo")
	}

	stats := c.Stats()
	if stats.MessagesSent != 4 || stats.FramesSent != 2 || stats.BatchesSent != 1 {
		t.Errorf("stats = %+v, want 4 messages in 2 frames (1 batch)", stats)
	}
}

// A single message per peer must travel unwrapped, so a peer reading the
// raw endpoint (no Coalescer) sees the original payload.
func TestCoalescerSinglePassThrough(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	c := NewCoalescer(ep0)

	ctx := context.Background()
	if err := c.Send(ctx, 1, []byte("raw")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	msg, err := ep1.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "raw" {
		t.Errorf("raw endpoint received %q, want %q", msg.Payload, "raw")
	}
}

func TestCoalescerFlushEmptyIsNoOp(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	c := NewCoalescer(ep0)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stats := c.Stats(); stats.FramesSent != 0 {
		t.Errorf("empty flush sent %d frames", stats.FramesSent)
	}
}

func TestCoalescerRejectsUnknownPeer(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	c := NewCoalescer(ep0)
	if err := c.Send(context.Background(), 7, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send(7) err = %v, want ErrUnknownPeer", err)
	}
}

func TestBatchCodecRejectsCorrupt(t *testing.T) {
	frames := map[string][]byte{
		"empty count":      {batchMagic, 0},
		"truncated part":   {batchMagic, 2, 5, 'a'},
		"trailing bytes":   append(encodeBatch([][]byte{[]byte("a"), []byte("b")}), 0xEE),
		"bad count varint": {batchMagic, 0xFF},
	}
	for name, frame := range frames {
		if _, err := decodeBatch(frame); err == nil {
			t.Errorf("%s: decodeBatch accepted a corrupt frame", name)
		}
	}
	// Round trip sanity, including empty parts.
	parts := [][]byte{[]byte("one"), nil, []byte("three")}
	got, err := decodeBatch(encodeBatch(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "one" || len(got[1]) != 0 || string(got[2]) != "three" {
		t.Errorf("batch round trip = %q", got)
	}
}
