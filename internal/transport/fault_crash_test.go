package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The crash fault's contract: the first matching operation kills the
// endpoint, every operation while down fails with ErrCrashed, queued
// inbound messages survive the crash, Revive restores service, and a
// spent crash rule never fires again (a process dies once).

func TestFaultCrashOnSendTripsAndRefuses(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultCrash, Direction: DirSend, Nodes: []int{0}}},
	})
	ctx := context.Background()
	if err := a.Send(ctx, 1, []byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first Send = %v, want ErrCrashed", err)
	}
	if !a.Crashed() {
		t.Fatal("Crashed() = false after the crash tripped")
	}
	// Everything is refused while down — including receives.
	if err := a.Send(ctx, 1, []byte("again")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Send while down = %v, want ErrCrashed", err)
	}
	if _, err := a.Recv(ctx); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Recv while down = %v, want ErrCrashed", err)
	}
	st := a.Stats()
	if st.Crashes != 1 || st.CrashRefused != 2 {
		t.Errorf("stats = %+v, want Crashes=1 CrashRefused=2", st)
	}
	// Revive restores service; the spent rule no longer matches.
	a.Revive()
	if a.Crashed() {
		t.Fatal("Crashed() = true after Revive")
	}
	if err := a.Send(ctx, 1, []byte("back")); err != nil {
		t.Fatalf("Send after Revive: %v", err)
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if msg, err := b.Recv(rctx); err != nil || string(msg.Payload) != "back" {
		t.Fatalf("peer Recv after Revive = %q, %v", msg.Payload, err)
	}
	if got := a.Stats().Crashes; got != 1 {
		t.Errorf("Crashes = %d after Revive, want 1 (rule is one-shot)", got)
	}
}

func TestFaultCrashOnRecvConsumesTrippingMessage(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultCrash, Direction: DirRecv, Nodes: []int{0}}},
	})
	ctx := context.Background()
	if err := b.Send(ctx, 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, 0, []byte("second")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := a.Recv(rctx); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Recv = %v, want ErrCrashed", err)
	}
	// The message that tripped the crash died with the process; the one
	// still queued survives into the revived endpoint.
	a.Revive()
	msg, err := a.Recv(rctx)
	if err != nil {
		t.Fatalf("Recv after Revive: %v", err)
	}
	if string(msg.Payload) != "second" {
		t.Errorf("revived Recv = %q, want %q (first consumed by the crash)", msg.Payload, "second")
	}
}

func TestFaultCrashRoundScoped(t *testing.T) {
	roundOf := func(p []byte) (int, bool) {
		if len(p) == 0 {
			return 0, false
		}
		return int(p[0]), true
	}
	a, b := faultPair(t, FaultConfig{
		RoundOf: roundOf,
		Rules: []FaultRule{{
			Kind: FaultCrash, Direction: DirSend, Nodes: []int{0}, FromRound: 3, ToRound: 3,
		}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for round := 1; round <= 2; round++ {
		if err := a.Send(ctx, 1, []byte{byte(round)}); err != nil {
			t.Fatalf("round %d Send: %v", round, err)
		}
	}
	if err := a.Send(ctx, 1, []byte{3}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("round 3 Send = %v, want ErrCrashed", err)
	}
	// Pre-crash sends were accepted and remain deliverable.
	for _, want := range []byte{1, 2} {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Payload[0] != want {
			t.Errorf("got round %d, want %d", msg.Payload[0], want)
		}
	}
	// After revival the spent rule is gone: the node can re-send round 3.
	a.Revive()
	if err := a.Send(ctx, 1, []byte{3}); err != nil {
		t.Fatalf("round 3 re-send after Revive: %v", err)
	}
	if msg, err := b.Recv(ctx); err != nil || msg.Payload[0] != 3 {
		t.Fatalf("round 3 delivery = %v, %v", msg, err)
	}
}

func TestFaultCrashValidateAndString(t *testing.T) {
	if got := FaultCrash.String(); got != "crash" {
		t.Errorf("String() = %q, want crash", got)
	}
	cfg := FaultConfig{Rules: []FaultRule{{Kind: FaultCrash}}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected a plain crash rule: %v", err)
	}
	var s FaultStats
	s.Crashes = 2
	s.CrashRefused = 3
	if got := s.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5 (crash counters included)", got)
	}
	var sum FaultStats
	sum.Add(s)
	if sum.Crashes != 2 || sum.CrashRefused != 3 {
		t.Errorf("Add() lost crash counters: %+v", sum)
	}
}
