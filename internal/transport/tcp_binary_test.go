package transport

import (
	"context"
	"testing"
	"time"
)

// startBinaryPair boots a two-node TCP cluster with binary framing
// preferred on both sides and returns the endpoints.
func startBinaryPair(t *testing.T, opts ...TCPOption) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	a, err := ListenTCP(0, addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP(1, addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestTCPBinaryUpgrade pins the negotiation flow: the first send rides
// JSON (the peer has not demonstrated binary yet), the dial's hello
// frame announces capability, and subsequent sends in the reverse
// direction upgrade to binary framing — all carrying payloads intact.
func TestTCPBinaryUpgrade(t *testing.T) {
	a, b := startBinaryPair(t, WithBinaryFraming())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if a.SpeaksBinary(1) {
		t.Fatal("peer marked binary before any frame arrived")
	}
	if err := a.Send(ctx, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || string(msg.Payload) != "first" {
		t.Fatalf("got %d/%q, want 0/first", msg.From, msg.Payload)
	}
	// a's dial carried a hello, so b now knows a speaks binary and its
	// replies upgrade. The hello and the payload share a connection, so
	// by the time Recv returned the hello was already processed.
	if !b.SpeaksBinary(0) {
		t.Fatal("hello frame did not mark the dialing peer as binary")
	}
	if err := b.Send(ctx, 0, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	msg, err = a.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 1 || string(msg.Payload) != "reply" {
		t.Fatalf("got %d/%q, want 1/reply", msg.From, msg.Payload)
	}
	// b's dial also sent a hello, so a has now seen binary from b.
	if !a.SpeaksBinary(1) {
		t.Fatal("binary reply did not mark the peer as binary")
	}
	// Third leg runs fully upgraded; payload must still round-trip,
	// including bytes that would break line framing.
	payload := []byte("binary\npayload\xfb\xfd\x00")
	if err := a.Send(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	msg, err = b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != string(payload) {
		t.Fatalf("binary frame corrupted payload: %q", msg.Payload)
	}
}

// A binary-preferring node must interoperate with a JSON-only peer: the
// JSON-only side never demonstrates binary, so every frame it receives
// stays JSON and every frame it sends is understood.
func TestTCPBinaryInteropWithJSONPeer(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	a, err := ListenTCP(0, addrs, WithBinaryFraming())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, addrs) // JSON-only
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := a.Send(ctx, 1, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if msg, err := b.Recv(ctx); err != nil || string(msg.Payload) != "ping" {
			t.Fatalf("round %d: msg=%v err=%v", i, msg, err)
		}
		if err := b.Send(ctx, 0, []byte("pong")); err != nil {
			t.Fatal(err)
		}
		if msg, err := a.Recv(ctx); err != nil || string(msg.Payload) != "pong" {
			t.Fatalf("round %d: msg=%v err=%v", i, msg, err)
		}
	}
	if a.SpeaksBinary(1) {
		t.Error("JSON-only peer was marked binary")
	}
}

// Binary frames over the coalescer over TCP: the full stack the gossip
// runner uses when pointed at real sockets.
func TestTCPBinaryWithCoalescer(t *testing.T) {
	a, b := startBinaryPair(t, WithBinaryFraming())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ca := NewCoalescer(a)
	cb := NewCoalescer(b)
	for _, m := range []string{"share", "extrema"} {
		if err := ca.Send(ctx, 1, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ca.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"share", "extrema"} {
		msg, err := cb.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if string(msg.Payload) != want {
			t.Fatalf("payload = %q, want %q", msg.Payload, want)
		}
	}
	if got := ca.Stats(); got.BatchesSent != 1 {
		t.Errorf("stats = %+v, want one batch", got)
	}
}
