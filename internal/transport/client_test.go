package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

// testReplyID reads the test protocol: the payload is the 8-byte
// big-endian correlation ID.
func testReplyID(payload []byte) (uint64, bool) {
	if len(payload) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(payload), true
}

func testPayload(id uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, id)
	return b
}

// startEcho runs an echo server on the endpoint until the context is
// cancelled or the endpoint closes.
func startEcho(t *testing.T, ep Endpoint) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			msg, err := ep.Recv(ctx)
			if err != nil {
				return
			}
			if err := ep.Send(ctx, msg.From, msg.Payload); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// newClientCluster wires a memory network with echo servers on nodes
// 0..n-2 and a client on node n-1. mutate lets tests wrap the client's
// endpoint (e.g. in a FaultEndpoint) before the client takes it over.
func newClientCluster(t *testing.T, n int, cfg ClientConfig, wrap func(Endpoint) Endpoint) *Client {
	t.Helper()
	net, err := NewMemoryNetwork(n)
	if err != nil {
		t.Fatalf("memory network: %v", err)
	}
	t.Cleanup(func() { _ = net.Close() })
	for i := 0; i < n-1; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		startEcho(t, ep)
	}
	ep, err := net.Endpoint(n - 1)
	if err != nil {
		t.Fatalf("client endpoint: %v", err)
	}
	if wrap != nil {
		ep = wrap(ep)
	}
	cfg.Endpoint = ep
	cfg.ReplyID = testReplyID
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClientDoEcho(t *testing.T) {
	c := newClientCluster(t, 3, ClientConfig{RequestTimeout: time.Second}, nil)
	reply, err := c.Do(context.Background(), 0, 7, testPayload(7))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if id, ok := testReplyID(reply); !ok || id != 7 {
		t.Fatalf("reply id = %d, %v", id, ok)
	}
	if c.Down(0) {
		t.Fatal("node 0 marked down after a success")
	}
}

// flakyEndpoint fails the first `failures` sends, then passes through.
type flakyEndpoint struct {
	Endpoint
	mu       sync.Mutex
	failures int
}

func (f *flakyEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	f.mu.Lock()
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("flaky: injected send failure")
	}
	return f.Endpoint.Send(ctx, to, payload)
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	c := newClientCluster(t, 2, ClientConfig{
		RequestTimeout: time.Second,
		Retries:        3,
		BackoffBase:    time.Millisecond,
		BackoffCap:     2 * time.Millisecond,
	}, func(ep Endpoint) Endpoint {
		return &flakyEndpoint{Endpoint: ep, failures: 2}
	})
	reply, err := c.Do(context.Background(), 0, 1, testPayload(1))
	if err != nil {
		t.Fatalf("Do after transient failures: %v", err)
	}
	if id, _ := testReplyID(reply); id != 1 {
		t.Fatalf("reply id = %d, want 1", id)
	}
	if got := c.m.retries.Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	if c.Down(0) {
		t.Fatal("node 0 down despite eventual success")
	}
}

func TestClientDropMarksNodeDown(t *testing.T) {
	// Every send to node 0 is dropped; node 1 stays reachable. The
	// consecutive-failure detector must mark exactly node 0 down.
	cfg := FaultConfig{Seed: 1, Rules: []FaultRule{
		{Kind: FaultDrop, Direction: DirSend, Peers: []int{0}, Probability: 1},
	}}
	c := newClientCluster(t, 3, ClientConfig{
		RequestTimeout: 50 * time.Millisecond,
		Retries:        1,
		BackoffBase:    time.Millisecond,
		BackoffCap:     time.Millisecond,
		DownAfter:      2,
	}, func(ep Endpoint) Endpoint {
		fep, err := NewFaultEndpoint(ep, cfg)
		if err != nil {
			t.Fatalf("fault endpoint: %v", err)
		}
		return fep
	})
	// The detector counts consecutive failed operations (a fully
	// retried-out Do is one failure), so DownAfter=2 needs two.
	for id := uint64(1); id <= 2; id++ {
		if _, err := c.Do(context.Background(), 0, id, testPayload(id)); err == nil {
			t.Fatal("Do to a fully dropped node succeeded")
		}
	}
	if !c.Down(0) {
		t.Fatal("node 0 not marked down after consecutive failed requests")
	}
	if _, err := c.Do(context.Background(), 1, 3, testPayload(3)); err != nil {
		t.Fatalf("Do to healthy node: %v", err)
	}
	alive := c.AliveView(2)
	if alive[0] || !alive[1] {
		t.Fatalf("alive view = %v, want [false true]", alive)
	}
	if got := c.m.nodeDown.Value(); got != 1 {
		t.Fatalf("node_down counter = %d, want 1", got)
	}
}

func TestClientPartitionHitsDeadline(t *testing.T) {
	// A partition swallows traffic silently: the send succeeds but no
	// reply ever arrives, so the attempt must miss its deadline.
	cfg := FaultConfig{Seed: 1, Rules: []FaultRule{
		{Kind: FaultPartition, Direction: DirSend, Peers: []int{0}, Probability: 1},
	}}
	c := newClientCluster(t, 2, ClientConfig{
		RequestTimeout: 20 * time.Millisecond,
	}, func(ep Endpoint) Endpoint {
		fep, err := NewFaultEndpoint(ep, cfg)
		if err != nil {
			t.Fatalf("fault endpoint: %v", err)
		}
		return fep
	})
	_, err := c.Do(context.Background(), 0, 1, testPayload(1))
	if !errors.Is(err, ErrNoReply) {
		t.Fatalf("Do across partition: %v, want ErrNoReply", err)
	}
	if got := c.m.deadlines.Value(); got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}
}

func TestClientHedgeWinsOverDelayedPrimary(t *testing.T) {
	// Node 0 answers 200ms late; node 1 answers promptly. With a 5ms
	// hedge delay the fallback must win the race.
	cfg := FaultConfig{Seed: 1, Rules: []FaultRule{
		{Kind: FaultDelay, Direction: DirSend, Peers: []int{0}, Probability: 1, Delay: 200 * time.Millisecond},
	}}
	c := newClientCluster(t, 3, ClientConfig{
		RequestTimeout: 2 * time.Second,
		HedgeDelay:     5 * time.Millisecond,
	}, func(ep Endpoint) Endpoint {
		fep, err := NewFaultEndpoint(ep, cfg)
		if err != nil {
			t.Fatalf("fault endpoint: %v", err)
		}
		return fep
	})
	reply, node, err := c.DoHedged(context.Background(), 0, 1, 1, testPayload(1), 2, testPayload(2))
	if err != nil {
		t.Fatalf("DoHedged: %v", err)
	}
	if node != 1 {
		t.Fatalf("winning node = %d, want the hedge (1)", node)
	}
	if id, _ := testReplyID(reply); id != 2 {
		t.Fatalf("winning reply id = %d, want the hedge's (2)", id)
	}
	if got := c.m.hedges.Value(); got != 1 {
		t.Fatalf("hedges counter = %d, want 1", got)
	}
	if got := c.m.hedgeWins.Value(); got != 1 {
		t.Fatalf("hedge wins counter = %d, want 1", got)
	}
}

func TestClientHedgeDisabledFallsBackToDo(t *testing.T) {
	c := newClientCluster(t, 2, ClientConfig{RequestTimeout: time.Second}, nil)
	reply, node, err := c.DoHedged(context.Background(), 0, 0, 1, testPayload(1), 2, testPayload(2))
	if err != nil {
		t.Fatalf("DoHedged without hedging: %v", err)
	}
	if node != 0 {
		t.Fatalf("node = %d, want 0", node)
	}
	if id, _ := testReplyID(reply); id != 1 {
		t.Fatalf("reply id = %d, want 1", id)
	}
	if got := c.m.hedges.Value(); got != 0 {
		t.Fatalf("hedges counter = %d, want 0", got)
	}
}

func TestClientBackpressure(t *testing.T) {
	// A partitioned server never replies, so the single in-flight slot
	// stays occupied; the second request must shed as ErrOverloaded.
	cfg := FaultConfig{Seed: 1, Rules: []FaultRule{
		{Kind: FaultPartition, Direction: DirSend, Peers: []int{0}, Probability: 1},
	}}
	c := newClientCluster(t, 2, ClientConfig{
		RequestTimeout: 500 * time.Millisecond,
		MaxInFlight:    1,
	}, func(ep Endpoint) Endpoint {
		fep, err := NewFaultEndpoint(ep, cfg)
		if err != nil {
			t.Fatalf("fault endpoint: %v", err)
		}
		return fep
	})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.Do(context.Background(), 0, 1, testPayload(1))
		done <- err
	}()
	<-started
	// Give the first request time to take the slot.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Do(ctx, 0, 2, testPayload(2))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Do = %v, want ErrOverloaded", err)
	}
	if got := c.m.overloads.Value(); got != 1 {
		t.Fatalf("overloads counter = %d, want 1", got)
	}
	if err := <-done; !errors.Is(err, ErrNoReply) {
		t.Fatalf("first Do = %v, want ErrNoReply", err)
	}
}

func TestClientProbeFeedsDetector(t *testing.T) {
	cfg := FaultConfig{Seed: 1, Rules: []FaultRule{
		{Kind: FaultDrop, Direction: DirSend, Peers: []int{0}, Probability: 1},
	}}
	c := newClientCluster(t, 3, ClientConfig{
		RequestTimeout: 20 * time.Millisecond,
		DownAfter:      2,
	}, func(ep Endpoint) Endpoint {
		fep, err := NewFaultEndpoint(ep, cfg)
		if err != nil {
			t.Fatalf("fault endpoint: %v", err)
		}
		return fep
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Probe(context.Background(), 0, uint64(10+i), testPayload(uint64(10+i))); err == nil {
			t.Fatal("probe to dropped node succeeded")
		}
	}
	if !c.Down(0) {
		t.Fatal("node 0 not down after failed probes")
	}
	// A successful probe brings it back.
	c.SetDown(0, false)
	if c.Down(0) {
		t.Fatal("SetDown(false) did not clear the down mark")
	}
}

func TestRoute(t *testing.T) {
	alive := []bool{true, true, true}
	// CDF over [0.2, 0.3, 0.5]: u=0.10 -> 0, u=0.25 -> 1, u=0.9 -> 2.
	x := []float64{0.2, 0.3, 0.5}
	for _, tc := range []struct {
		u    float64
		want int
	}{{0.10, 0}, {0.25, 1}, {0.90, 2}} {
		got, err := Route(x, alive, -1, tc.u)
		if err != nil {
			t.Fatalf("Route(u=%v): %v", tc.u, err)
		}
		if got != tc.want {
			t.Fatalf("Route(u=%v) = %d, want %d", tc.u, got, tc.want)
		}
	}

	// Dead nodes are excluded and survivors renormalized: with node 2
	// dead, weights become [0.4, 0.6].
	got, err := Route(x, []bool{true, true, false}, -1, 0.5)
	if err != nil {
		t.Fatalf("Route with dead node: %v", err)
	}
	if got != 1 {
		t.Fatalf("Route with dead node = %d, want 1", got)
	}

	// avoid excludes the primary even when alive.
	got, err = Route(x, alive, 2, 0.99)
	if err != nil {
		t.Fatalf("Route with avoid: %v", err)
	}
	if got == 2 {
		t.Fatal("Route returned the avoided node")
	}

	// All candidates dead: ErrNoCandidates.
	if _, err := Route(x, []bool{false, false, false}, -1, 0.5); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("Route with all dead = %v, want ErrNoCandidates", err)
	}

	// Zero weight on every survivor: uniform fallback over the alive set.
	got, err = Route([]float64{0, 0, 1}, []bool{true, true, false}, -1, 0.6)
	if err != nil {
		t.Fatalf("Route with zero survivor weights: %v", err)
	}
	if got != 1 {
		t.Fatalf("uniform fallback = %d, want 1", got)
	}
}
