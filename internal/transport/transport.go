// Package transport provides the message-passing substrate for the
// decentralized allocation protocol: a Transport moves opaque payloads
// between the numbered nodes of a cluster. Two implementations are
// provided: an in-memory channel network (with deterministic failure
// injection for tests) and a TCP mesh for running the protocol across
// real processes, speaking JSON-line framing with a per-peer negotiated
// upgrade to length-prefixed binary frames. A Coalescer wrapper batches
// multiple messages to the same peer into one wire frame.
package transport

import (
	"context"
	"errors"
)

// Sentinel errors.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownPeer is returned when sending to a node id outside the
	// cluster.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrDropped is returned by failure-injecting transports when a
	// message was deliberately lost.
	ErrDropped = errors.New("transport: message dropped")
	// ErrCrashed is returned by every operation on an endpoint killed by
	// an injected crash fault until it is revived. Supervisors classify
	// it as a restartable failure (unlike protocol violations or
	// timeouts, which indicate live-system problems a restart cannot
	// fix).
	ErrCrashed = errors.New("transport: endpoint crashed")
)

// Message is one delivered payload.
type Message struct {
	// From is the sender's node id.
	From int
	// Payload is the opaque message body.
	Payload []byte
}

// Endpoint is one node's connection to the cluster.
type Endpoint interface {
	// ID returns this endpoint's node id.
	ID() int
	// Peers returns the number of nodes in the cluster (including this
	// one).
	Peers() int
	// Send delivers payload to node `to`. Implementations may block
	// until the message is handed to the network; ctx bounds that wait.
	Send(ctx context.Context, to int, payload []byte) error
	// Recv returns the next delivered message, blocking until one
	// arrives, the context is done, or the endpoint closes.
	Recv(ctx context.Context) (Message, error)
	// Close releases the endpoint. Subsequent operations return
	// ErrClosed.
	Close() error
}

// Broadcast sends payload to every peer except the sender itself.
func Broadcast(ctx context.Context, ep Endpoint, payload []byte) error {
	for to := 0; to < ep.Peers(); to++ {
		if to == ep.ID() {
			continue
		}
		if err := ep.Send(ctx, to, payload); err != nil {
			return err
		}
	}
	return nil
}
