package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
)

// batchMagic marks a coalesced batch payload. It collides with neither
// the JSON wire form (first byte '{') nor the protocol binary codec's
// magic (0xFB), so a Coalescer's Recv can split batches while passing
// single messages through untouched — and a plain endpoint on the far
// side of a non-coalescing peer never sees the batch form at all unless
// both sides agreed to wrap.
const batchMagic = 0xFA

// maxBatchParts bounds how many sub-messages one batch may claim,
// protecting the splitter from a hostile length prefix.
const maxBatchParts = 1 << 20

// CoalesceStats counts the work a Coalescer saved: how many logical
// messages travelled inside how many wire frames.
type CoalesceStats struct {
	// MessagesSent counts logical messages accepted by Send.
	MessagesSent int64
	// FramesSent counts wire frames handed to the inner endpoint
	// (singles pass through unwrapped; batches count once).
	FramesSent int64
	// BatchesSent counts frames that carried more than one message.
	BatchesSent int64
	// BytesSent counts wire bytes handed to the inner endpoint.
	BytesSent int64
}

// Coalescer wraps an Endpoint with per-peer message buffering: Send
// queues, Flush ships each peer's queue as one batch frame. The gossip
// aggregation mode sends a push-sum share and an extrema flood to the
// same neighbor every tick; coalescing folds those into a single wire
// frame, halving the frame count without changing delivery semantics.
// Recv transparently splits batches back into individual messages, in
// their original send order, so users of the wrapped endpoint never see
// the batch encoding.
//
// Send and Flush are safe for concurrent use, but messages buffered by
// concurrent Sends to the same peer land in the batch in lock order.
type Coalescer struct {
	inner Endpoint

	mu      sync.Mutex
	pending map[int][][]byte
	stats   CoalesceStats

	recvMu sync.Mutex
	queue  []Message
}

var _ Endpoint = (*Coalescer)(nil)

// NewCoalescer wraps inner with per-peer send coalescing.
func NewCoalescer(inner Endpoint) *Coalescer {
	return &Coalescer{inner: inner, pending: make(map[int][][]byte)}
}

// Unwrap returns the wrapped endpoint.
func (c *Coalescer) Unwrap() Endpoint { return c.inner }

// ID implements Endpoint.
func (c *Coalescer) ID() int { return c.inner.ID() }

// Peers implements Endpoint.
func (c *Coalescer) Peers() int { return c.inner.Peers() }

// Send buffers payload for peer `to` until the next Flush. It never
// touches the network, so it cannot fail on transport errors; those
// surface from Flush.
func (c *Coalescer) Send(_ context.Context, to int, payload []byte) error {
	if to < 0 || to >= c.inner.Peers() {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, to, c.inner.Peers())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending[to] = append(c.pending[to], append([]byte(nil), payload...))
	c.stats.MessagesSent++
	return nil
}

// Flush ships every buffered queue: a single buffered message passes
// through unwrapped, two or more become one batch frame. Queues that
// fail to send stay cleared — the protocol treats a lost frame like any
// other drop (rounds re-aggregate; nothing replays stale state) — and
// the first error is returned after all peers were attempted.
func (c *Coalescer) Flush(ctx context.Context) error {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[int][][]byte)
	c.mu.Unlock()

	var firstErr error
	for to := 0; to < c.inner.Peers(); to++ {
		parts, ok := pending[to]
		if !ok {
			continue
		}
		var frame []byte
		if len(parts) == 1 {
			frame = parts[0]
		} else {
			frame = encodeBatch(parts)
		}
		if err := c.inner.Send(ctx, to, frame); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.mu.Lock()
		c.stats.FramesSent++
		c.stats.BytesSent += int64(len(frame))
		if len(parts) > 1 {
			c.stats.BatchesSent++
		}
		c.mu.Unlock()
	}
	return firstErr
}

// Recv implements Endpoint, splitting batch frames back into the
// individual messages they carry.
func (c *Coalescer) Recv(ctx context.Context) (Message, error) {
	for {
		c.recvMu.Lock()
		if len(c.queue) > 0 {
			msg := c.queue[0]
			c.queue = c.queue[1:]
			c.recvMu.Unlock()
			return msg, nil
		}
		c.recvMu.Unlock()
		// The blocking receive happens with no lock held: a peer that
		// never answers must not wedge concurrent Recv callers draining
		// already-split batch parts.
		msg, err := c.inner.Recv(ctx)
		if err != nil {
			return Message{}, err
		}
		if len(msg.Payload) == 0 || msg.Payload[0] != batchMagic {
			return msg, nil
		}
		parts, err := decodeBatch(msg.Payload)
		if err != nil {
			// A corrupt batch is dropped whole, like a corrupt frame on
			// any other transport; the protocol's rounds are idempotent.
			continue
		}
		c.recvMu.Lock()
		for _, p := range parts {
			c.queue = append(c.queue, Message{From: msg.From, Payload: p})
		}
		c.recvMu.Unlock()
	}
}

// Close flushes nothing (buffered messages are dropped, matching a
// connection teardown) and closes the inner endpoint.
func (c *Coalescer) Close() error { return c.inner.Close() }

// Stats returns a snapshot of the coalescing counters.
func (c *Coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// encodeBatch packs parts as
// [batchMagic][uvarint count]([uvarint len][bytes])*.
func encodeBatch(parts [][]byte) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, p := range parts {
		size += binary.MaxVarintLen64 + len(p)
	}
	frame := make([]byte, 0, size)
	frame = append(frame, batchMagic)
	frame = binary.AppendUvarint(frame, uint64(len(parts)))
	for _, p := range parts {
		frame = binary.AppendUvarint(frame, uint64(len(p)))
		frame = append(frame, p...)
	}
	return frame
}

// decodeBatch unpacks an encodeBatch frame; any inconsistency (bad
// varint, count or length exceeding the remaining bytes, trailing
// garbage) fails the whole frame.
func decodeBatch(frame []byte) ([][]byte, error) {
	buf := frame[1:] // caller checked batchMagic
	count, n := binary.Uvarint(buf)
	if n <= 0 || count == 0 || count > maxBatchParts {
		return nil, fmt.Errorf("transport: batch frame with bad part count")
	}
	buf = buf[n:]
	parts := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(buf)
		if n <= 0 || size > uint64(len(buf)-n) {
			return nil, fmt.Errorf("transport: batch frame truncated at part %d", i)
		}
		buf = buf[n:]
		parts = append(parts, append([]byte(nil), buf[:size]...))
		buf = buf[size:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("transport: batch frame has %d trailing bytes", len(buf))
	}
	return parts, nil
}
