package transport

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMemoryNetworkDelivers(t *testing.T) {
	net, err := NewMemoryNetwork(3)
	if err != nil {
		t.Fatalf("NewMemoryNetwork: %v", err)
	}
	defer net.Close()

	a, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Send(ctx, 1, []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.From != 0 || string(msg.Payload) != "hello" {
		t.Errorf("got %+v, want from=0 payload=hello", msg)
	}
}

func TestMemoryNetworkPayloadIsolated(t *testing.T) {
	// Mutating the sent buffer after Send must not affect delivery.
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)
	buf := []byte("abc")
	if err := a.Send(context.Background(), 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	msg, err := b.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "abc" {
		t.Errorf("payload = %q, want abc", msg.Payload)
	}
}

func TestMemoryNetworkUnknownPeer(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint(0)
	if err := a.Send(context.Background(), 7, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("error = %v, want ErrUnknownPeer", err)
	}
	if _, err := net.Endpoint(9); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Endpoint error = %v, want ErrUnknownPeer", err)
	}
}

func TestMemoryNetworkRecvContextCancel(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want DeadlineExceeded", err)
	}
}

func TestMemoryNetworkClose(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.Endpoint(0)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), 1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: error = %v, want ErrClosed", err)
	}
	if _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close: error = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := net.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestMemoryNetworkDropRate(t *testing.T) {
	net, err := NewMemoryNetwork(2, WithDropRate(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint(0)
	if err := a.Send(context.Background(), 1, []byte("x")); !errors.Is(err, ErrDropped) {
		t.Errorf("error = %v, want ErrDropped at drop rate 1", err)
	}

	// Rate 0.5 with a seed: deterministic mix of delivered and dropped.
	net2, err := NewMemoryNetwork(2, WithDropRate(0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	defer net2.Close()
	s, _ := net2.Endpoint(0)
	dropped := 0
	for i := 0; i < 100; i++ {
		if err := s.Send(context.Background(), 1, []byte("x")); errors.Is(err, ErrDropped) {
			dropped++
		}
	}
	if dropped < 30 || dropped > 70 {
		t.Errorf("dropped %d of 100 at rate 0.5", dropped)
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	net, err := NewMemoryNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sender, _ := net.Endpoint(2)
	if err := Broadcast(context.Background(), sender, []byte("ping")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		ep, _ := net.Endpoint(i)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		msg, err := ep.Recv(ctx)
		cancel()
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if msg.From != 2 || string(msg.Payload) != "ping" {
			t.Errorf("peer %d got %+v", i, msg)
		}
	}
}

func TestTCPEndpointRoundTrip(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	a, err := ListenTCP(0, addrs)
	if err != nil {
		t.Fatalf("ListenTCP(0): %v", err)
	}
	defer a.Close()
	b, err := ListenTCP(1, addrs)
	if err != nil {
		t.Fatalf("ListenTCP(1): %v", err)
	}
	defer b.Close()
	// Exchange the ephemeral addresses.
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, 1, []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.From != 0 || string(msg.Payload) != "over tcp" {
		t.Errorf("got %+v", msg)
	}
	// Reply over the reverse direction.
	if err := b.Send(ctx, 0, []byte("ack")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	reply, err := a.Recv(ctx)
	if err != nil {
		t.Fatalf("reply Recv: %v", err)
	}
	if reply.From != 1 || string(reply.Payload) != "ack" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestTCPEndpointManyMessages(t *testing.T) {
	a, err := ListenTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const count = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			if err := a.Send(ctx, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	received := 0
	for received < count {
		if _, err := b.Recv(ctx); err != nil {
			t.Fatalf("recv after %d: %v", received, err)
		}
		received++
	}
	wg.Wait()
}

func TestTCPEndpointCloseUnblocks(t *testing.T) {
	a, err := ListenTCP(0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := a.Send(context.Background(), 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestTCPEndpointValidation(t *testing.T) {
	if _, err := ListenTCP(5, []string{"127.0.0.1:0"}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("bad id: error = %v, want ErrUnknownPeer", err)
	}
	a, err := ListenTCP(0, []string{"127.0.0.1:0", "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), 9, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("bad peer: error = %v, want ErrUnknownPeer", err)
	}
}

func TestNewMemoryNetworkValidation(t *testing.T) {
	if _, err := NewMemoryNetwork(0); err == nil {
		t.Error("zero-node network accepted")
	}
}

func TestTCPSkipsMalformedFrames(t *testing.T) {
	// Garbage lines on the wire must be skipped, not kill the reader;
	// subsequent valid frames still arrive.
	a, err := ListenTCP(0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n{\"from\":0,\"payload\":\"!!!notbase64\"}\n")); err != nil {
		t.Fatal(err)
	}
	valid, err := json.Marshal(wireFrame{From: 0, Payload: base64.StdEncoding.EncodeToString([]byte("ok"))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(valid, '\n')); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msg, err := a.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(msg.Payload) != "ok" {
		t.Errorf("payload = %q", msg.Payload)
	}
}

func TestTCPSetPeerAddrValidation(t *testing.T) {
	a, err := ListenTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeerAddr(9, "127.0.0.1:1"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("error = %v, want ErrUnknownPeer", err)
	}
	if a.ID() != 0 || a.Peers() != 2 {
		t.Errorf("identity accessors wrong: %d/%d", a.ID(), a.Peers())
	}
}

func TestTCPDialFailsAfterRetryWindowWithCanceledContext(t *testing.T) {
	// Dialing a dead peer with an already-expired context must fail
	// promptly with the context error, not burn the whole retry window.
	a, err := ListenTCP(0, []string{"127.0.0.1:0", "127.0.0.1:1"}) // port 1: nothing listens
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = a.Send(ctx, 1, []byte("x"))
	if err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("send took %v despite 100ms context", elapsed)
	}
}
