package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcpPair builds two connected endpoints on ephemeral ports and returns
// them with their address books exchanged.
func tcpPair(t *testing.T, opts ...TCPOption) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	a, err := ListenTCP(0, addrs, opts...)
	if err != nil {
		t.Fatalf("ListenTCP(0): %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP(1, addrs, opts...)
	if err != nil {
		t.Fatalf("ListenTCP(1): %v", err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// Regression: Send with a deadline context used to leave the deadline on
// the cached connection, so a later Send with a deadline-free context
// failed spuriously once that instant passed.
func TestTCPSendClearsStaleWriteDeadline(t *testing.T) {
	a, b := tcpPair(t)

	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := a.Send(shortCtx, 1, []byte("first")); err != nil {
		t.Fatalf("Send with deadline: %v", err)
	}
	cancel()
	// Let the first context's deadline pass; the stale write deadline (if
	// any) is now in the past.
	time.Sleep(80 * time.Millisecond)

	if err := a.Send(context.Background(), 1, []byte("second")); err != nil {
		t.Fatalf("Send without deadline inherited a stale one: %v", err)
	}

	recvCtx, cancelRecv := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelRecv()
	for _, want := range []string{"first", "second"} {
		msg, err := b.Recv(recvCtx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(msg.Payload) != want {
			t.Errorf("payload = %q, want %q", msg.Payload, want)
		}
	}
}

// Regression: concurrent Sends to one peer used to hit the net.Conn with
// unserialized writes, letting JSON-line frames interleave and corrupt
// the stream. Large payloads force multi-chunk writes; run with -race.
func TestTCPConcurrentSendsDeliverWholeFrames(t *testing.T) {
	a, b := tcpPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const senders = 8
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 256*1024)
	}
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Send(ctx, 1, payload(i)); err != nil {
				errs <- fmt.Errorf("sender %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seen := make(map[byte]bool)
	for n := 0; n < senders; n++ {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", n, err)
		}
		if len(msg.Payload) != 256*1024 {
			t.Fatalf("message %d length = %d, frame corrupted", n, len(msg.Payload))
		}
		c := msg.Payload[0]
		for _, got := range msg.Payload {
			if got != c {
				t.Fatalf("message %d mixes bytes %q and %q: frames interleaved", n, c, got)
			}
		}
		if seen[c] {
			t.Fatalf("payload %q delivered twice", c)
		}
		seen[c] = true
	}
}

// refusedAddr returns a loopback address that refuses connections.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Regression: the dial-retry loop used a flat time.Sleep, so context
// cancellation mid-sleep was ignored for up to the retry interval.
func TestTCPDialRetryWakesOnCancel(t *testing.T) {
	old := dialRetryInterval
	dialRetryInterval = 2 * time.Second
	defer func() { dialRetryInterval = old }()

	a, err := ListenTCP(0, []string{"127.0.0.1:0", refusedAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = a.Send(ctx, 1, []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Send error = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Errorf("Send took %v after cancel; retry sleep ignored the context", elapsed)
	}
}

// Same bug, shutdown flavor: Close during the retry sleep must unblock
// the dialing Send promptly with ErrClosed.
func TestTCPDialRetryWakesOnClose(t *testing.T) {
	old := dialRetryInterval
	dialRetryInterval = 2 * time.Second
	defer func() { dialRetryInterval = old }()

	a, err := ListenTCP(0, []string{"127.0.0.1:0", refusedAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		a.Close()
	}()
	start := time.Now()
	err = a.Send(context.Background(), 1, []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Send error = %v, want ErrClosed", err)
	}
	if elapsed > time.Second {
		t.Errorf("Send took %v after Close; retry sleep ignored shutdown", elapsed)
	}
}

// Regression: readLoop used to swallow scanner.Err(), so a peer whose
// frame exceeded the buffer limit disappeared with no trace.
func TestTCPReadErrorHookFiresOnOversizedFrame(t *testing.T) {
	hookErrs := make(chan error, 1)
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	b, err := ListenTCP(1, addrs,
		WithMaxFrameBytes(1024),
		WithReadErrorHook(func(remote string, err error) {
			select {
			case hookErrs <- fmt.Errorf("%s: %w", remote, err):
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// 4 KiB of payload produces a frame well over b's 1 KiB limit. The
	// write side may or may not error depending on buffering; the read
	// side must report bufio.ErrTooLong through the hook either way.
	_ = a.Send(ctx, 1, bytes.Repeat([]byte("x"), 4*1024))

	select {
	case err := <-hookErrs:
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Errorf("hook error = %v, want bufio.ErrTooLong", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read error hook never fired")
	}
}

// Shutdown must not report errors for connections it closed itself.
func TestTCPReadErrorHookSilentOnClose(t *testing.T) {
	var mu sync.Mutex
	var fired []string
	hook := func(remote string, err error) {
		mu.Lock()
		fired = append(fired, fmt.Sprintf("%s: %v", remote, err))
		mu.Unlock()
	}
	a, b := tcpPair(t, WithReadErrorHook(hook))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, 1, []byte("warm up")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, f := range fired {
		if !strings.Contains(f, "use of closed") {
			t.Errorf("hook fired during shutdown: %s", f)
		}
	}
	if len(fired) != 0 {
		t.Errorf("hook fired %d times during clean shutdown: %v", len(fired), fired)
	}
}

// Pins the drain semantics of Recv after Close: messages already queued
// in the inbox remain retrievable; only once the inbox is empty does
// Recv report ErrClosed.
func TestTCPRecvDrainsInboxAfterClose(t *testing.T) {
	a, b := tcpPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const queued = 3
	for i := 0; i < queued; i++ {
		if err := a.Send(ctx, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Wait for the reader goroutine to queue all three, then close.
	deadline := time.Now().Add(5 * time.Second)
	for len(b.inbox) < queued {
		if time.Now().After(deadline) {
			t.Fatalf("inbox holds %d of %d messages", len(b.inbox), queued)
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()

	for i := 0; i < queued; i++ {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d after Close: %v (queued message dropped)", i, err)
		}
		if len(msg.Payload) != 1 || msg.Payload[0] != byte(i) {
			t.Errorf("Recv %d = %v", i, msg.Payload)
		}
	}
	if _, err := b.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv on drained closed endpoint = %v, want ErrClosed", err)
	}
}
