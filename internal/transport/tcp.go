package transport

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// tcpInboxSize bounds the TCP endpoint's delivery queue; the reader
// goroutines block (exerting TCP back-pressure) when it is full.
const tcpInboxSize = 1024

// defaultMaxFrameBytes bounds a single JSON-line frame on the wire.
const defaultMaxFrameBytes = 16 * 1024 * 1024

// wireFrame is one JSON line on a TCP connection.
type wireFrame struct {
	From    int    `json:"from"`
	Payload string `json:"payload"` // base64
}

// tcpConn pairs a cached outgoing connection with a write mutex so that
// concurrent Sends to the same peer emit whole frames: net.Conn.Write is
// goroutine-safe but gives no atomicity across calls, and an interleaved
// JSON line corrupts the stream for every later message.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// TCPOption configures a TCPEndpoint at construction.
type TCPOption func(*TCPEndpoint)

// WithReadErrorHook installs a callback invoked when an inbound
// connection's read loop terminates with an error (for example a peer
// frame exceeding the frame-size limit). Without it such connections are
// dropped silently and the failure surfaces only as a later round
// timeout. The hook may be called from multiple reader goroutines
// concurrently; remote is the peer's network address.
func WithReadErrorHook(fn func(remote string, err error)) TCPOption {
	return func(e *TCPEndpoint) { e.readErrHook = fn }
}

// WithMaxFrameBytes overrides the per-frame size limit (default 16 MiB).
func WithMaxFrameBytes(n int) TCPOption {
	return func(e *TCPEndpoint) { e.maxFrameBytes = n }
}

// TCPEndpoint connects one node of the allocation protocol to its peers
// over TCP with JSON-line framing. Outgoing connections are dialed lazily
// and cached; every accepted connection feeds a shared inbox.
type TCPEndpoint struct {
	id    int
	addrs []string
	ln    net.Listener

	maxFrameBytes int
	readErrHook   func(remote string, err error)

	mu    sync.Mutex
	conns map[int]*tcpConn
	wg    sync.WaitGroup

	inbox chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts node id's endpoint listening on addrs[id]. addrs maps
// every node id to its listen address; a port of ":0" style is allowed, in
// which case Addr reports the bound address (useful in tests; production
// deployments list concrete addresses).
func ListenTCP(id int, addrs []string, opts ...TCPOption) (*TCPEndpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(addrs))
	}
	ep := &TCPEndpoint{
		id:            id,
		addrs:         append([]string(nil), addrs...),
		maxFrameBytes: defaultMaxFrameBytes,
		conns:         make(map[int]*tcpConn),
		inbox:         make(chan Message, tcpInboxSize),
		done:          make(chan struct{}),
	}
	for _, opt := range opts {
		opt(ep)
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addrs[id], err)
	}
	ep.ln = ln
	ep.addrs[id] = ln.Addr().String()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's bound listen address.
func (e *TCPEndpoint) Addr() string { return e.addrs[e.id] }

// SetPeerAddr installs a peer's concrete address after construction. This
// supports bootstrap flows where every node listens on an ephemeral port
// first and the address book is assembled afterwards (tests, local
// clusters). It must be called before the first Send to that peer.
func (e *TCPEndpoint) SetPeerAddr(id int, addr string) error {
	if id < 0 || id >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(e.addrs))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addrs[id] = addr
	return nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() int { return e.id }

// Peers implements Endpoint.
func (e *TCPEndpoint) Peers() int { return len(e.addrs) }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			// Listener closed (normal shutdown) or fatal error;
			// either way the endpoint stops accepting.
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close() //fap:ignore errdrop best-effort close of a read-side socket
	// Close the connection when the endpoint shuts down so the scanner
	// unblocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-e.done:
			conn.Close() //fap:ignore errdrop best-effort close that unblocks the scanner below
		case <-stop:
		}
	}()

	scanner := bufio.NewScanner(conn)
	// The scanner's effective limit is max(limit, cap(buf)), so the
	// initial buffer must not exceed a small configured frame limit.
	initial := 64 * 1024
	if initial > e.maxFrameBytes {
		initial = e.maxFrameBytes
	}
	scanner.Buffer(make([]byte, 0, initial), e.maxFrameBytes)
	for scanner.Scan() {
		var frame wireFrame
		if err := json.Unmarshal(scanner.Bytes(), &frame); err != nil {
			continue // skip malformed line; protocol layer re-requests nothing, rounds are idempotent per peer
		}
		payload, err := base64.StdEncoding.DecodeString(frame.Payload)
		if err != nil {
			continue
		}
		select {
		case e.inbox <- Message{From: frame.From, Payload: payload}:
		case <-e.done:
			return
		}
	}
	// A scanner error (oversized frame, mid-stream read failure) means
	// this peer's messages silently stop arriving; surface it so the
	// operator sees more than an eventual round timeout. Shutdown closes
	// the connection deliberately — not an error worth reporting.
	if err := scanner.Err(); err != nil && e.readErrHook != nil {
		select {
		case <-e.done:
		default:
			e.readErrHook(conn.RemoteAddr().String(), err)
		}
	}
}

// Send implements Endpoint. The first send to a peer dials it; the
// connection is cached for the endpoint's lifetime. A failed write tears
// down the cached connection so the next attempt re-dials.
func (e *TCPEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if to < 0 || to >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, to, len(e.addrs))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	tc, err := e.conn(ctx, to)
	if err != nil {
		return err
	}
	frame, err := json.Marshal(wireFrame{
		From:    e.id,
		Payload: base64.StdEncoding.EncodeToString(payload),
	})
	if err != nil {
		return fmt.Errorf("transport: encoding frame: %w", err)
	}
	frame = append(frame, '\n')
	tc.mu.Lock()
	defer tc.mu.Unlock()
	// Always (re)set the write deadline: a context without one must clear
	// any deadline a previous Send left on the connection, or this write
	// fails spuriously once that stale instant passes.
	deadline, _ := ctx.Deadline()
	if err := tc.c.SetWriteDeadline(deadline); err != nil {
		return fmt.Errorf("transport: setting write deadline: %w", err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		e.dropConn(to, tc)
		return fmt.Errorf("transport: writing to node %d: %w", to, err)
	}
	return nil
}

// dialRetryWindow bounds how long Send keeps retrying a refused dial.
// Peers of a cluster start asynchronously, so the first sender routinely
// beats the last listener; retrying briefly makes bootstrap order-free.
const dialRetryWindow = 10 * time.Second

// dialRetryInterval is the pause between dial attempts. A variable so
// tests can shrink it.
var dialRetryInterval = 50 * time.Millisecond

func (e *TCPEndpoint) conn(ctx context.Context, to int) (*tcpConn, error) {
	e.mu.Lock()
	if tc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return tc, nil
	}
	addr := e.addrs[to]
	e.mu.Unlock()

	var d net.Dialer
	var c net.Conn
	var err error
	deadline := time.Now().Add(dialRetryWindow)
	for attempt := 0; ; attempt++ {
		c, err = d.DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, err)
		}
		// Pause before retrying, but wake immediately on context
		// cancellation or endpoint shutdown — a flat sleep here would
		// hold Close and cancelled callers hostage for the interval.
		timer := time.NewTimer(dialRetryInterval)
		select {
		case <-e.done:
			timer.Stop()
			return nil, ErrClosed
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, ctx.Err())
		case <-timer.C:
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.conns[to]; ok {
		// Lost the race; keep the first connection.
		c.Close() //fap:ignore errdrop closing the duplicate connection that lost the dial race
		return existing, nil
	}
	tc := &tcpConn{c: c}
	e.conns[to] = tc
	return tc, nil
}

func (e *TCPEndpoint) dropConn(to int, tc *tcpConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == tc {
		delete(e.conns, to)
	}
	tc.c.Close() //fap:ignore errdrop tearing down a connection that already failed
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		select {
		case msg := <-e.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	case <-ctx.Done():
		return Message{}, fmt.Errorf("transport: receiving at %d: %w", e.id, ctx.Err())
	}
}

// Close implements Endpoint: it stops the listener, closes every
// connection, and waits for the reader goroutines to exit.
func (e *TCPEndpoint) Close() error {
	var errOut error
	e.closeOnce.Do(func() {
		close(e.done)
		if err := e.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errOut = err
		}
		e.mu.Lock()
		for to, tc := range e.conns {
			tc.c.Close() //fap:ignore errdrop best-effort close on the shutdown path
			delete(e.conns, to)
		}
		e.mu.Unlock()
		e.wg.Wait()
	})
	return errOut
}
