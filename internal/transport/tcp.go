package transport

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpInboxSize bounds the TCP endpoint's delivery queue; the reader
// goroutines block (exerting TCP back-pressure) when it is full.
const tcpInboxSize = 1024

// defaultMaxFrameBytes bounds a single frame on the wire (JSON line or
// binary body).
const defaultMaxFrameBytes = 16 * 1024 * 1024

// tcpBinMagic opens a length-prefixed binary wire frame. It can never be
// the first byte of a JSON-line frame ('{'), so a reader peeking one
// byte can demultiplex the two framings on the same connection.
const tcpBinMagic = 0xFD

// wireFrame is one JSON line on a TCP connection.
type wireFrame struct {
	From    int    `json:"from"`
	Payload string `json:"payload"` // base64
}

// tcpConn pairs a cached outgoing connection with a write mutex so that
// concurrent Sends to the same peer emit whole frames: net.Conn.Write is
// goroutine-safe but gives no atomicity across calls, and an interleaved
// JSON line corrupts the stream for every later message.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// TCPOption configures a TCPEndpoint at construction.
type TCPOption func(*TCPEndpoint)

// WithReadErrorHook installs a callback invoked when an inbound
// connection's read loop terminates with an error (for example a peer
// frame exceeding the frame-size limit). Without it such connections are
// dropped silently and the failure surfaces only as a later round
// timeout. The hook may be called from multiple reader goroutines
// concurrently; remote is the peer's network address.
func WithReadErrorHook(fn func(remote string, err error)) TCPOption {
	return func(e *TCPEndpoint) { e.readErrHook = fn }
}

// WithMaxFrameBytes overrides the per-frame size limit (default 16 MiB).
func WithMaxFrameBytes(n int) TCPOption {
	return func(e *TCPEndpoint) { e.maxFrameBytes = n }
}

// WithBinaryFraming makes the endpoint prefer length-prefixed binary
// wire frames over JSON lines. Negotiation is per peer: on dialing a
// peer the endpoint announces itself with a binary hello frame, and it
// upgrades its own sends to a peer only after that peer has demonstrated
// binary framing on an inbound connection. Until then — and against
// endpoints that never speak binary — every send falls back to the
// JSON-line framing, so mixed clusters interoperate frame by frame.
func WithBinaryFraming() TCPOption {
	return func(e *TCPEndpoint) { e.preferBinary = true }
}

// TCPEndpoint connects one node of the allocation protocol to its peers
// over TCP. Two framings share each connection, demultiplexed by the
// first byte: legacy JSON lines and length-prefixed binary frames (see
// WithBinaryFraming). Outgoing connections are dialed lazily and cached;
// every accepted connection feeds a shared inbox.
type TCPEndpoint struct {
	id    int
	addrs []string
	ln    net.Listener

	maxFrameBytes int
	readErrHook   func(remote string, err error)
	preferBinary  bool

	mu       sync.Mutex
	conns    map[int]*tcpConn
	binPeers map[int]bool
	wg       sync.WaitGroup

	inbox chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts node id's endpoint listening on addrs[id]. addrs maps
// every node id to its listen address; a port of ":0" style is allowed, in
// which case Addr reports the bound address (useful in tests; production
// deployments list concrete addresses).
func ListenTCP(id int, addrs []string, opts ...TCPOption) (*TCPEndpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(addrs))
	}
	ep := &TCPEndpoint{
		id:            id,
		addrs:         append([]string(nil), addrs...),
		maxFrameBytes: defaultMaxFrameBytes,
		conns:         make(map[int]*tcpConn),
		binPeers:      make(map[int]bool),
		inbox:         make(chan Message, tcpInboxSize),
		done:          make(chan struct{}),
	}
	for _, opt := range opts {
		opt(ep)
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addrs[id], err)
	}
	ep.ln = ln
	ep.addrs[id] = ln.Addr().String()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's bound listen address.
func (e *TCPEndpoint) Addr() string { return e.addrs[e.id] }

// SetPeerAddr installs a peer's concrete address after construction. This
// supports bootstrap flows where every node listens on an ephemeral port
// first and the address book is assembled afterwards (tests, local
// clusters). It must be called before the first Send to that peer.
func (e *TCPEndpoint) SetPeerAddr(id int, addr string) error {
	if id < 0 || id >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(e.addrs))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addrs[id] = addr
	return nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() int { return e.id }

// Peers implements Endpoint.
func (e *TCPEndpoint) Peers() int { return len(e.addrs) }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			// Listener closed (normal shutdown) or fatal error;
			// either way the endpoint stops accepting.
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close() //fap:ignore errdrop best-effort close of a read-side socket
	// Close the connection when the endpoint shuts down so the scanner
	// unblocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-e.done:
			conn.Close() //fap:ignore errdrop best-effort close that unblocks the scanner below
		case <-stop:
		}
	}()

	// Mixed-framing read loop: peek one byte to tell a binary frame
	// (tcpBinMagic) from a JSON line ('{' or anything else), then consume
	// exactly one frame of that kind. Both framings may interleave freely
	// on one connection, so a peer can upgrade mid-stream.
	r := bufio.NewReader(conn)
	var readErr error
	for {
		head, err := r.Peek(1)
		if err != nil {
			readErr = err
			break
		}
		var from int
		var payload []byte
		if head[0] == tcpBinMagic {
			from, payload, err = e.readBinaryFrame(r)
			if err != nil {
				readErr = err
				break
			}
			e.markBinaryPeer(from)
			if payload == nil {
				continue // hello frame: capability announcement only
			}
		} else {
			from, payload, err = e.readJSONFrame(r)
			if err != nil {
				readErr = err
				break
			}
			if payload == nil {
				continue // malformed line skipped; rounds are idempotent per peer
			}
		}
		select {
		case e.inbox <- Message{From: from, Payload: payload}:
		case <-e.done:
			return
		}
	}
	// A read error (oversized frame, mid-stream failure) means this
	// peer's messages silently stop arriving; surface it so the operator
	// sees more than an eventual round timeout. EOF and shutdown close
	// the connection deliberately — not errors worth reporting.
	if readErr != nil && !errors.Is(readErr, io.EOF) && e.readErrHook != nil {
		select {
		case <-e.done:
		default:
			e.readErrHook(conn.RemoteAddr().String(), readErr)
		}
	}
}

// readBinaryFrame consumes one [magic][uvarint len][uvarint from][payload]
// frame. A frame whose body is just the sender id is a hello: it returns
// a nil payload. Frame-shape violations are errors (the stream cannot be
// resynchronized after a bad length prefix).
func (e *TCPEndpoint) readBinaryFrame(r *bufio.Reader) (int, []byte, error) {
	if _, err := r.ReadByte(); err != nil { // magic, already peeked
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: reading binary frame length: %w", err)
	}
	if size == 0 || size > uint64(e.maxFrameBytes) {
		return 0, nil, fmt.Errorf("transport: binary frame of %d bytes exceeds limit %d", size, e.maxFrameBytes)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("transport: reading binary frame body: %w", err)
	}
	from, n := binary.Uvarint(body)
	if n <= 0 || from >= uint64(len(e.addrs)) {
		return 0, nil, fmt.Errorf("transport: binary frame with bad sender id")
	}
	if int(size) == n {
		return int(from), nil, nil // hello
	}
	return int(from), body[n:], nil
}

// readJSONFrame consumes one newline-terminated JSON frame. Malformed
// lines return a nil payload (skipped, stream stays aligned on the next
// newline); an over-long line is an error because the reader cannot skip
// what it refuses to buffer.
func (e *TCPEndpoint) readJSONFrame(r *bufio.Reader) (int, []byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Accumulate up to the frame limit, then give up.
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull && len(buf) <= e.maxFrameBytes {
			line, err = r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		if len(buf) > e.maxFrameBytes {
			return 0, nil, fmt.Errorf("transport: JSON frame exceeds limit %d: %w", e.maxFrameBytes, bufio.ErrTooLong)
		}
		line = buf
	}
	if err != nil {
		return 0, nil, err
	}
	var frame wireFrame
	if err := json.Unmarshal(line, &frame); err != nil {
		return 0, nil, nil
	}
	payload, err := base64.StdEncoding.DecodeString(frame.Payload)
	if err != nil {
		return 0, nil, nil
	}
	return frame.From, payload, nil
}

// markBinaryPeer records that a peer demonstrated binary framing.
func (e *TCPEndpoint) markBinaryPeer(from int) {
	e.mu.Lock()
	e.binPeers[from] = true
	e.mu.Unlock()
}

// SpeaksBinary reports whether peer `to` has demonstrated binary framing
// on an inbound connection (and will therefore be sent binary frames,
// when this endpoint prefers them).
func (e *TCPEndpoint) SpeaksBinary(to int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.binPeers[to]
}

// Send implements Endpoint. The first send to a peer dials it; the
// connection is cached for the endpoint's lifetime. A failed write tears
// down the cached connection so the next attempt re-dials.
func (e *TCPEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if to < 0 || to >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, to, len(e.addrs))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	tc, err := e.conn(ctx, to)
	if err != nil {
		return err
	}
	var frame []byte
	if e.preferBinary && e.SpeaksBinary(to) {
		frame = e.binaryFrame(payload)
	} else {
		frame, err = json.Marshal(wireFrame{
			From:    e.id,
			Payload: base64.StdEncoding.EncodeToString(payload),
		})
		if err != nil {
			return fmt.Errorf("transport: encoding frame: %w", err)
		}
		frame = append(frame, '\n')
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	// Always (re)set the write deadline: a context without one must clear
	// any deadline a previous Send left on the connection, or this write
	// fails spuriously once that stale instant passes.
	deadline, _ := ctx.Deadline()
	if err := tc.c.SetWriteDeadline(deadline); err != nil {
		return fmt.Errorf("transport: setting write deadline: %w", err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		e.dropConn(to, tc)
		return fmt.Errorf("transport: writing to node %d: %w", to, err)
	}
	return nil
}

// dialRetryWindow bounds how long Send keeps retrying a refused dial.
// Peers of a cluster start asynchronously, so the first sender routinely
// beats the last listener; retrying briefly makes bootstrap order-free.
const dialRetryWindow = 10 * time.Second

// dialRetryInterval is the pause between dial attempts. A variable so
// tests can shrink it.
var dialRetryInterval = 50 * time.Millisecond

func (e *TCPEndpoint) conn(ctx context.Context, to int) (*tcpConn, error) {
	e.mu.Lock()
	if tc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return tc, nil
	}
	addr := e.addrs[to]
	e.mu.Unlock()

	var d net.Dialer
	var c net.Conn
	var err error
	deadline := time.Now().Add(dialRetryWindow)
	for attempt := 0; ; attempt++ {
		c, err = d.DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, err)
		}
		// Pause before retrying, but wake immediately on context
		// cancellation or endpoint shutdown — a flat sleep here would
		// hold Close and cancelled callers hostage for the interval.
		timer := time.NewTimer(dialRetryInterval)
		select {
		case <-e.done:
			timer.Stop()
			return nil, ErrClosed
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, ctx.Err())
		case <-timer.C:
		}
	}
	e.mu.Lock()
	if existing, ok := e.conns[to]; ok {
		// Lost the race; keep the first connection.
		e.mu.Unlock()
		c.Close() //fap:ignore errdrop closing the duplicate connection that lost the dial race
		return existing, nil
	}
	tc := &tcpConn{c: c}
	e.conns[to] = tc
	e.mu.Unlock()
	if e.preferBinary {
		// Announce binary capability so the peer can upgrade its sends
		// back to us. Best-effort: a failed hello only delays the upgrade.
		tc.mu.Lock()
		_, _ = tc.c.Write(e.binaryFrame(nil)) // hello is a capability hint, not protocol state
		tc.mu.Unlock()
	}
	return tc, nil
}

// binaryFrame wraps payload in the length-prefixed binary wire framing:
// [magic][uvarint bodyLen][uvarint from][payload]. A nil payload encodes
// the hello frame.
func (e *TCPEndpoint) binaryFrame(payload []byte) []byte {
	var from [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(from[:], uint64(e.id))
	frame := make([]byte, 0, 1+binary.MaxVarintLen64+n+len(payload))
	frame = append(frame, tcpBinMagic)
	frame = binary.AppendUvarint(frame, uint64(n+len(payload)))
	frame = append(frame, from[:n]...)
	return append(frame, payload...)
}

func (e *TCPEndpoint) dropConn(to int, tc *tcpConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == tc {
		delete(e.conns, to)
	}
	tc.c.Close() //fap:ignore errdrop tearing down a connection that already failed
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		select {
		case msg := <-e.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	case <-ctx.Done():
		return Message{}, fmt.Errorf("transport: receiving at %d: %w", e.id, ctx.Err())
	}
}

// Close implements Endpoint: it stops the listener, closes every
// connection, and waits for the reader goroutines to exit.
func (e *TCPEndpoint) Close() error {
	var errOut error
	e.closeOnce.Do(func() {
		close(e.done)
		if err := e.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errOut = err
		}
		e.mu.Lock()
		for to, tc := range e.conns {
			tc.c.Close() //fap:ignore errdrop best-effort close on the shutdown path
			delete(e.conns, to)
		}
		e.mu.Unlock()
		e.wg.Wait()
	})
	return errOut
}
