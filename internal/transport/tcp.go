package transport

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// tcpInboxSize bounds the TCP endpoint's delivery queue; the reader
// goroutines block (exerting TCP back-pressure) when it is full.
const tcpInboxSize = 1024

// wireFrame is one JSON line on a TCP connection.
type wireFrame struct {
	From    int    `json:"from"`
	Payload string `json:"payload"` // base64
}

// TCPEndpoint connects one node of the allocation protocol to its peers
// over TCP with JSON-line framing. Outgoing connections are dialed lazily
// and cached; every accepted connection feeds a shared inbox.
type TCPEndpoint struct {
	id    int
	addrs []string
	ln    net.Listener

	mu    sync.Mutex
	conns map[int]net.Conn
	wg    sync.WaitGroup

	inbox chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts node id's endpoint listening on addrs[id]. addrs maps
// every node id to its listen address; a port of ":0" style is allowed, in
// which case Addr reports the bound address (useful in tests; production
// deployments list concrete addresses).
func ListenTCP(id int, addrs []string) (*TCPEndpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addrs[id], err)
	}
	ep := &TCPEndpoint{
		id:    id,
		addrs: append([]string(nil), addrs...),
		ln:    ln,
		conns: make(map[int]net.Conn),
		inbox: make(chan Message, tcpInboxSize),
		done:  make(chan struct{}),
	}
	ep.addrs[id] = ln.Addr().String()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's bound listen address.
func (e *TCPEndpoint) Addr() string { return e.addrs[e.id] }

// SetPeerAddr installs a peer's concrete address after construction. This
// supports bootstrap flows where every node listens on an ephemeral port
// first and the address book is assembled afterwards (tests, local
// clusters). It must be called before the first Send to that peer.
func (e *TCPEndpoint) SetPeerAddr(id int, addr string) error {
	if id < 0 || id >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, id, len(e.addrs))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addrs[id] = addr
	return nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() int { return e.id }

// Peers implements Endpoint.
func (e *TCPEndpoint) Peers() int { return len(e.addrs) }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			// Listener closed (normal shutdown) or fatal error;
			// either way the endpoint stops accepting.
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close() //nolint:errcheck // best-effort close of a read-side socket
	// Close the connection when the endpoint shuts down so the scanner
	// unblocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-e.done:
			conn.Close() //nolint:errcheck // unblocks the scanner below
		case <-stop:
		}
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		var frame wireFrame
		if err := json.Unmarshal(scanner.Bytes(), &frame); err != nil {
			continue // skip malformed line; protocol layer re-requests nothing, rounds are idempotent per peer
		}
		payload, err := base64.StdEncoding.DecodeString(frame.Payload)
		if err != nil {
			continue
		}
		select {
		case e.inbox <- Message{From: frame.From, Payload: payload}:
		case <-e.done:
			return
		}
	}
}

// Send implements Endpoint. The first send to a peer dials it; the
// connection is cached for the endpoint's lifetime. A failed write tears
// down the cached connection so the next attempt re-dials.
func (e *TCPEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if to < 0 || to >= len(e.addrs) {
		return fmt.Errorf("%w: node %d of %d", ErrUnknownPeer, to, len(e.addrs))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	conn, err := e.conn(ctx, to)
	if err != nil {
		return err
	}
	frame, err := json.Marshal(wireFrame{
		From:    e.id,
		Payload: base64.StdEncoding.EncodeToString(payload),
	})
	if err != nil {
		return fmt.Errorf("transport: encoding frame: %w", err)
	}
	frame = append(frame, '\n')
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return fmt.Errorf("transport: setting write deadline: %w", err)
		}
	}
	if _, err := conn.Write(frame); err != nil {
		e.dropConn(to, conn)
		return fmt.Errorf("transport: writing to node %d: %w", to, err)
	}
	return nil
}

// dialRetryWindow bounds how long Send keeps retrying a refused dial.
// Peers of a cluster start asynchronously, so the first sender routinely
// beats the last listener; retrying briefly makes bootstrap order-free.
const dialRetryWindow = 10 * time.Second

func (e *TCPEndpoint) conn(ctx context.Context, to int) (net.Conn, error) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	addr := e.addrs[to]
	e.mu.Unlock()

	var d net.Dialer
	var c net.Conn
	var err error
	deadline := time.Now().Add(dialRetryWindow)
	for attempt := 0; ; attempt++ {
		c, err = d.DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		select {
		case <-e.done:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, ctx.Err())
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dialing node %d at %q: %w", to, addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.conns[to]; ok {
		// Lost the race; keep the first connection.
		c.Close() //nolint:errcheck // duplicate connection
		return existing, nil
	}
	e.conns[to] = c
	return c, nil
}

func (e *TCPEndpoint) dropConn(to int, conn net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == conn {
		delete(e.conns, to)
	}
	conn.Close() //nolint:errcheck // tearing down a failed connection
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		select {
		case msg := <-e.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	case <-ctx.Done():
		return Message{}, fmt.Errorf("transport: receiving at %d: %w", e.id, ctx.Err())
	}
}

// Close implements Endpoint: it stops the listener, closes every
// connection, and waits for the reader goroutines to exit.
func (e *TCPEndpoint) Close() error {
	var errOut error
	e.closeOnce.Do(func() {
		close(e.done)
		if err := e.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errOut = err
		}
		e.mu.Lock()
		for to, c := range e.conns {
			c.Close() //nolint:errcheck // shutdown path
			delete(e.conns, to)
		}
		e.mu.Unlock()
		e.wg.Wait()
	})
	return errOut
}
