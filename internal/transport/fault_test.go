package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// faultPair wraps two memory-network endpoints with the same fault
// config and returns them (node 0, node 1).
func faultPair(t *testing.T, cfg FaultConfig) (*FaultEndpoint, *FaultEndpoint) {
	t.Helper()
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.Close() })
	var out [2]*FaultEndpoint
	for id := 0; id < 2; id++ {
		inner, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id], err = NewFaultEndpoint(inner, cfg)
		if err != nil {
			t.Fatalf("NewFaultEndpoint(%d): %v", id, err)
		}
	}
	return out[0], out[1]
}

func TestFaultDropIsVisibleAndCounted(t *testing.T) {
	a, _ := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultDrop, Direction: DirSend}},
	})
	err := a.Send(context.Background(), 1, []byte("x"))
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("Send error = %v, want ErrDropped", err)
	}
	if got := a.Stats().SendDropped; got != 1 {
		t.Errorf("SendDropped = %d, want 1", got)
	}
}

func TestFaultPartitionSwallowsSilently(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultPartition, Direction: DirSend, Peers: []int{1}}},
	})
	// The send reports success but nothing arrives.
	if err := a.Send(context.Background(), 1, []byte("lost")); err != nil {
		t.Fatalf("partitioned Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv = %v, want deadline exceeded (message black-holed)", err)
	}
	if got := a.Stats().SendPartitioned; got != 1 {
		t.Errorf("SendPartitioned = %d, want 1", got)
	}
	// Peer 0 is not partitioned: the reverse direction still works.
	if err := b.Send(context.Background(), 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if msg, err := a.Recv(ctx2); err != nil || string(msg.Payload) != "ok" {
		t.Fatalf("reverse Recv = %v, %v", msg, err)
	}
}

func TestFaultDuplicateDeliversExtraCopies(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultDuplicate, Direction: DirSend, Copies: 2}},
	})
	if err := a.Send(context.Background(), 1, []byte("thrice")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if string(msg.Payload) != "thrice" {
			t.Errorf("Recv %d payload = %q", i, msg.Payload)
		}
	}
	if got := a.Stats().SendDuplicated; got != 2 {
		t.Errorf("SendDuplicated = %d, want 2", got)
	}
}

func TestFaultRecvDuplicate(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultDuplicate, Direction: DirRecv}},
	})
	if err := a.Send(context.Background(), 1, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		msg, err := b.Recv(ctx)
		if err != nil || string(msg.Payload) != "twice" {
			t.Fatalf("Recv %d = %v, %v", i, msg, err)
		}
	}
	if got := b.Stats().RecvDuplicated; got != 1 {
		t.Errorf("RecvDuplicated = %d, want 1", got)
	}
}

func TestFaultDelayAddsLatency(t *testing.T) {
	const lag = 60 * time.Millisecond
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultDelay, Direction: DirSend, Delay: lag}},
	})
	start := time.Now()
	if err := a.Send(context.Background(), 1, []byte("late")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lag {
		t.Errorf("message arrived after %v, want ≥ %v", elapsed, lag)
	}
	if got := a.Stats().SendDelayed; got != 1 {
		t.Errorf("SendDelayed = %d, want 1", got)
	}
}

func TestFaultReorderSwapsAdjacentArrivals(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultReorder, Direction: DirRecv, Delay: time.Second}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	// Every arrival matches the reorder rule, so "first" is held and
	// "second" overtakes it.
	m1, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(m1.Payload) != "second" || string(m2.Payload) != "first" {
		t.Errorf("order = %q, %q; want swapped", m1.Payload, m2.Payload)
	}
	if got := b.Stats().RecvReordered; got != 1 {
		t.Errorf("RecvReordered = %d, want 1", got)
	}
}

func TestFaultReorderReleasesHeldWithoutSuccessor(t *testing.T) {
	a, b := faultPair(t, FaultConfig{
		Rules: []FaultRule{{Kind: FaultReorder, Direction: DirRecv, Delay: 30 * time.Millisecond}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, 1, []byte("lonely")); err != nil {
		t.Fatal(err)
	}
	// No successor ever arrives: after the hold window the message must
	// come out anyway — reordering never becomes loss.
	msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(msg.Payload) != "lonely" {
		t.Errorf("payload = %q", msg.Payload)
	}
	if got := b.Stats().RecvReordered; got != 0 {
		t.Errorf("RecvReordered = %d, want 0 (no swap happened)", got)
	}
}

func TestFaultRoundWindowScopesRule(t *testing.T) {
	// Payload convention for the test: round = first byte.
	roundOf := func(p []byte) (int, bool) {
		if len(p) == 0 {
			return 0, false
		}
		return int(p[0]), true
	}
	a, b := faultPair(t, FaultConfig{
		RoundOf: roundOf,
		Rules: []FaultRule{{
			Kind: FaultPartition, Direction: DirSend, FromRound: 2, ToRound: 3,
		}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for round := 1; round <= 4; round++ {
		if err := a.Send(ctx, 1, []byte{byte(round)}); err != nil {
			t.Fatalf("round %d Send: %v", round, err)
		}
	}
	// Rounds 2 and 3 are black-holed; 1 and 4 arrive.
	for _, want := range []byte{1, 4} {
		msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Payload[0] != want {
			t.Errorf("got round %d, want %d", msg.Payload[0], want)
		}
	}
	if got := a.Stats().SendPartitioned; got != 2 {
		t.Errorf("SendPartitioned = %d, want 2", got)
	}
}

func TestFaultNodeSelectorScopesRule(t *testing.T) {
	cfg := FaultConfig{
		Rules: []FaultRule{{Kind: FaultDrop, Direction: DirSend, Nodes: []int{0}}},
	}
	a, b := faultPair(t, cfg)
	if err := a.Send(context.Background(), 1, []byte("x")); !errors.Is(err, ErrDropped) {
		t.Fatalf("node 0 Send = %v, want ErrDropped", err)
	}
	if err := b.Send(context.Background(), 0, []byte("y")); err != nil {
		t.Fatalf("node 1 Send = %v, want success (rule scoped to node 0)", err)
	}
}

func TestFaultProbabilisticRuleIsSeededDeterministic(t *testing.T) {
	run := func() (dropped int64) {
		net, err := NewMemoryNetwork(2)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		inner, err := net.Endpoint(0)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewFaultEndpoint(inner, FaultConfig{
			Seed:  42,
			Rules: []FaultRule{{Kind: FaultDrop, Direction: DirSend, Probability: 0.5}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			_ = ep.Send(context.Background(), 1, []byte("x"))
		}
		return ep.Stats().SendDropped
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("same seed gave %d then %d drops", first, second)
	}
	if first == 0 || first == 200 {
		t.Errorf("p=0.5 dropped %d of 200 — rule not probabilistic", first)
	}
}

func TestFaultFirstMatchWins(t *testing.T) {
	// A deterministic drop listed before a partition: only the drop
	// fires.
	a, _ := faultPair(t, FaultConfig{
		Rules: []FaultRule{
			{Kind: FaultDrop, Direction: DirSend},
			{Kind: FaultPartition, Direction: DirSend},
		},
	})
	if err := a.Send(context.Background(), 1, []byte("x")); !errors.Is(err, ErrDropped) {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.SendDropped != 1 || st.SendPartitioned != 0 {
		t.Errorf("stats = %+v, want only the first rule applied", st)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{Rules: []FaultRule{{Kind: FaultKind(99)}}},
		{Rules: []FaultRule{{Kind: FaultDrop, Probability: 1.5}}},
		{Rules: []FaultRule{{Kind: FaultDrop, Probability: -0.1}}},
		{Rules: []FaultRule{{Kind: FaultDelay, Delay: -time.Second}}},
		{Rules: []FaultRule{{Kind: FaultDuplicate, Copies: -1}}},
		{Rules: []FaultRule{{Kind: FaultReorder, Direction: DirSend}}},
		{Rules: []FaultRule{{Kind: FaultDrop, FromRound: 3, ToRound: 1}}},
		{Rules: []FaultRule{{Kind: FaultDrop, FromRound: 1}}}, // round window without RoundOf
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not have", i)
		}
	}
	good := FaultConfig{
		RoundOf: func([]byte) (int, bool) { return 0, true },
		Rules: []FaultRule{
			{Kind: FaultDrop, Probability: 0.3, FromRound: 1, ToRound: 5},
			{Kind: FaultReorder, Direction: DirRecv},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}

	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	inner, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultEndpoint(inner, bad[0]); err == nil {
		t.Error("NewFaultEndpoint accepted an invalid config")
	}
	if _, err := NewFaultEndpoint(nil, FaultConfig{}); err == nil {
		t.Error("NewFaultEndpoint accepted a nil inner endpoint")
	}
}

func TestFaultStatsAddAndTotal(t *testing.T) {
	a := FaultStats{SendDropped: 1, RecvReordered: 2}
	a.Add(FaultStats{SendDropped: 3, RecvDuplicated: 4})
	if a.SendDropped != 4 || a.RecvDuplicated != 4 || a.RecvReordered != 2 {
		t.Errorf("Add = %+v", a)
	}
	if got := a.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}
