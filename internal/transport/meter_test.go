package transport

import (
	"context"
	"testing"

	"filealloc/internal/metrics"
)

// counterValue finds one counter series in a snapshot by name and node.
func counterValue(t *testing.T, snap metrics.Snapshot, name, node string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name != name {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "node" && l.Value == node {
				return c.Value
			}
		}
	}
	return 0
}

func TestMeteredEndpointCounts(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatalf("NewMemoryNetwork: %v", err)
	}
	defer func() {
		if err := net.Close(); err != nil {
			t.Errorf("closing network: %v", err)
		}
	}()
	reg := metrics.New()
	raw0, err := net.Endpoint(0)
	if err != nil {
		t.Fatalf("endpoint 0: %v", err)
	}
	raw1, err := net.Endpoint(1)
	if err != nil {
		t.Fatalf("endpoint 1: %v", err)
	}
	ep0 := NewMeteredEndpoint(raw0, reg)
	ep1 := NewMeteredEndpoint(raw1, reg)

	ctx := context.Background()
	payload := []byte("0123456789")
	for i := 0; i < 3; i++ {
		if err := ep0.Send(ctx, 1, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		msg, err := ep1.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(msg.Payload) != len(payload) {
			t.Fatalf("recv %d: payload %d bytes, want %d", i, len(msg.Payload), len(payload))
		}
	}
	// An error send must hit the error counter, not the success one.
	if err := ep0.Send(ctx, 99, payload); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}

	snap := reg.Snapshot()
	if got := counterValue(t, snap, "fap_transport_sends_total", "0"); got != 3 {
		t.Errorf("sends = %d, want 3", got)
	}
	if got := counterValue(t, snap, "fap_transport_send_errors_total", "0"); got != 1 {
		t.Errorf("send errors = %d, want 1", got)
	}
	if got := counterValue(t, snap, "fap_transport_recvs_total", "1"); got != 3 {
		t.Errorf("recvs = %d, want 3", got)
	}
	for _, h := range snap.Histograms {
		node := ""
		for _, l := range h.Labels {
			if l.Key == "node" {
				node = l.Value
			}
		}
		switch {
		case h.Name == "fap_transport_sent_bytes" && node == "0":
			if h.Sum != 30 {
				t.Errorf("sent bytes sum = %d, want 30", h.Sum)
			}
			if h.Counts[0] != 3 { // 10 bytes ≤ first bound (64)
				t.Errorf("sent bytes bucket counts = %v, want first bucket 3", h.Counts)
			}
		case h.Name == "fap_transport_recv_bytes" && node == "1":
			if h.Sum != 30 {
				t.Errorf("recv bytes sum = %d, want 30", h.Sum)
			}
		}
	}
}

// TestMeteredEndpointSurvivesRevive is the crash-recovery contract: the
// metered wrapper forwards Revive to the fault endpoint underneath, and
// counts recorded before the crash remain after it — cumulative metrics
// are monotone across crash/revive cycles.
func TestMeteredEndpointSurvivesRevive(t *testing.T) {
	net, err := NewMemoryNetwork(2)
	if err != nil {
		t.Fatalf("NewMemoryNetwork: %v", err)
	}
	defer func() {
		if err := net.Close(); err != nil {
			t.Errorf("closing network: %v", err)
		}
	}()
	raw0, err := net.Endpoint(0)
	if err != nil {
		t.Fatalf("endpoint 0: %v", err)
	}
	// The first payload byte doubles as the round index: the crash rule
	// fires on the first round-2 send, exactly once.
	fep, err := NewFaultEndpoint(raw0, FaultConfig{
		Rules:   []FaultRule{{Kind: FaultCrash, Direction: DirSend, FromRound: 2}},
		RoundOf: func(p []byte) (int, bool) { return int(p[0]), true },
	})
	if err != nil {
		t.Fatalf("NewFaultEndpoint: %v", err)
	}
	reg := metrics.New()
	ep := NewMeteredEndpoint(fep, reg)
	ctx := context.Background()

	if err := ep.Send(ctx, 1, []byte{1, 'a'}); err != nil {
		t.Fatalf("send before crash: %v", err)
	}
	if err := ep.Send(ctx, 1, []byte{2, 'b'}); err == nil {
		t.Fatal("crash-rule send succeeded")
	}
	if !fep.Crashed() {
		t.Fatal("crash rule did not trip")
	}
	if err := ep.Send(ctx, 1, []byte{2, 'c'}); err == nil {
		t.Fatal("send while crashed succeeded")
	}
	ep.Revive()
	if fep.Crashed() {
		t.Fatal("Revive through the meter did not revive the fault endpoint")
	}
	if err := ep.Send(ctx, 1, []byte{2, 'd'}); err != nil {
		t.Fatalf("send after revive: %v", err)
	}

	snap := reg.Snapshot()
	if got := counterValue(t, snap, "fap_transport_sends_total", "0"); got != 2 {
		t.Errorf("sends across revive = %d, want 2 (pre-crash count lost?)", got)
	}
	if got := counterValue(t, snap, "fap_transport_send_errors_total", "0"); got != 2 {
		t.Errorf("send errors = %d, want 2 (crash trip + refused)", got)
	}
}

func TestPublishFaultStats(t *testing.T) {
	reg := metrics.New()
	PublishFaultStats(reg, 2, FaultStats{SendDropped: 4, Crashes: 1})
	snap := reg.Snapshot()
	var total int64
	byKind := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Name != "fap_transport_faults_total" {
			t.Fatalf("unexpected counter %s", c.Name)
		}
		total += c.Value
		for _, l := range c.Labels {
			if l.Key == "kind" {
				byKind[l.Value] = c.Value
			}
		}
	}
	if len(snap.Counters) != 11 {
		t.Errorf("got %d fault-kind series, want 11 (zero kinds must still register)", len(snap.Counters))
	}
	if total != 5 || byKind["send_dropped"] != 4 || byKind["crashes"] != 1 {
		t.Errorf("fault counters = %v (total %d), want send_dropped=4 crashes=1", byKind, total)
	}
}
