package filealloc

import (
	"context"
	"fmt"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

// FileSpec describes one file of a multi-file workload.
type FileSpec struct {
	// Name labels the file in results.
	Name string
	// AccessRates holds λ_i^f: each node's access rate to THIS file.
	AccessRates []float64
}

// MultiWorkload describes several files sharing the nodes' queues
// (section 5.4): each file is allocated independently (its fractions sum
// to 1) but all files stored at a node contend for its single server.
type MultiWorkload struct {
	// Files lists the files.
	Files []FileSpec
	// ServiceRates holds μ_i (one element = homogeneous). Stability
	// requires μ_i to exceed the total access rate a node can attract.
	ServiceRates []float64
	// DelayWeight is k.
	DelayWeight float64
}

// FilePlacement is one file's slice of a multi-file plan.
type FilePlacement struct {
	// Name echoes the FileSpec.
	Name string
	// Fractions is the file's allocation over nodes.
	Fractions []float64
}

// MultiResult is a computed multi-file plan.
type MultiResult struct {
	// Files holds one placement per file, in input order.
	Files []FilePlacement
	// Cost is the expected cost of one (randomly chosen) access.
	Cost float64
	// Iterations performed by the solver.
	Iterations int
	// Converged reports whether the ε-criterion fired.
	Converged bool
}

// PlanFiles computes the joint allocation of several files over the
// network, modelling the queue contention between files stored at the
// same node. Options are shared with Plan (the dynamic stepsize option is
// unavailable here because the multi-file utility has cross partials; a
// fixed stepsize is used, configurable via WithStepsize).
func PlanFiles(ctx context.Context, net Network, w MultiWorkload, opts ...PlanOption) (*MultiResult, error) {
	if len(w.Files) == 0 {
		return nil, fmt.Errorf("%w: no files", ErrBadSpec)
	}
	g, err := net.graph()
	if err != nil {
		return nil, err
	}
	conv := topology.RoundTrip
	if net.OneWayCosts {
		conv = topology.OneWay
	}
	access := make([][]float64, len(w.Files))
	fileRates := make([]float64, len(w.Files))
	for f, spec := range w.Files {
		if len(spec.AccessRates) != net.Nodes {
			return nil, fmt.Errorf("%w: file %q has %d access rates for %d nodes",
				ErrBadSpec, spec.Name, len(spec.AccessRates), net.Nodes)
		}
		a, err := topology.AccessCosts(g, spec.AccessRates, conv)
		if err != nil {
			return nil, fmt.Errorf("%w: file %q: %v", ErrBadSpec, spec.Name, err)
		}
		access[f] = a
		for _, r := range spec.AccessRates {
			fileRates[f] += r
		}
	}
	model, err := costmodel.NewMultiFile(access, w.ServiceRates, fileRates, w.DelayWeight, costmodel.ShareWeights)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}

	cfg := planConfig{
		alpha:   0.1,
		epsilon: 1e-6,
		maxIter: 100000,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	coreOpts := []core.Option{
		core.WithAlpha(cfg.alpha),
		core.WithEpsilon(cfg.epsilon),
		core.WithMaxIterations(cfg.maxIter),
		core.WithKKTCheck(),
	}
	if cfg.onRound != nil {
		fn := cfg.onRound
		coreOpts = append(coreOpts, core.WithTrace(func(it core.Iteration) {
			fn(it.Index, -it.Utility, it.X)
		}))
	}
	alloc, err := core.NewAllocator(model, coreOpts...)
	if err != nil {
		return nil, fmt.Errorf("filealloc: configuring multi-file solver: %w", err)
	}
	init := cfg.initial
	if init == nil {
		init = make([]float64, model.Dim())
		for f := 0; f < model.Files(); f++ {
			for i := 0; i < net.Nodes; i++ {
				init[model.Index(f, i)] = 1 / float64(net.Nodes)
			}
		}
	}
	res, err := alloc.Run(ctx, init)
	if err != nil {
		return nil, fmt.Errorf("filealloc: solving multi-file plan: %w", err)
	}
	cost, err := model.Cost(res.X)
	if err != nil {
		return nil, fmt.Errorf("filealloc: evaluating multi-file plan: %w", err)
	}
	out := &MultiResult{
		Cost:       cost,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}
	for f, spec := range w.Files {
		fractions := make([]float64, net.Nodes)
		for i := 0; i < net.Nodes; i++ {
			fractions[i] = res.X[model.Index(f, i)]
		}
		out.Files = append(out.Files, FilePlacement{Name: spec.Name, Fractions: fractions})
	}
	return out, nil
}
