package filealloc

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (section 6 and 7.3) and per ablation indexed in DESIGN.md, plus
// micro-benchmarks of the hot paths. Each figure benchmark regenerates the
// figure's full data series per iteration, so ns/op is the cost of
// reproducing that figure.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"filealloc/internal/agent"
	"filealloc/internal/catalog"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/experiments"
	"filealloc/internal/gossip"
	"filealloc/internal/multicopy"
	"filealloc/internal/sim"
	"filealloc/internal/sweep"
	"filealloc/internal/topology"
)

// benchWorkers gives each figure benchmark a serial and a parallel
// variant: "serial" pins the sweep engine to one worker (the exact
// sequential reference path), "parallel" lets it use every core. The
// ratio of the two is the sweep engine's speedup on that figure.
var benchWorkers = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", 0}, // 0 → GOMAXPROCS
}

// BenchmarkFig3ConvergenceProfiles regenerates figure 3: four convergence
// profiles (α = 0.67, 0.3, 0.19, 0.08) on the 4-node ring.
func BenchmarkFig3ConvergenceProfiles(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		profiles, err := experiments.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 4 {
			b.Fatalf("got %d profiles", len(profiles))
		}
	}
}

// BenchmarkFig4Fragmentation regenerates figure 4: integral placement vs
// fragmented optimum across ring link costs.
func BenchmarkFig4Fragmentation(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig5AlphaSweep regenerates figure 5: iterations to convergence
// over 70 stepsizes, serially and with the parallel sweep engine.
func BenchmarkFig5AlphaSweep(b *testing.B) {
	for _, bw := range benchWorkers {
		b.Run(bw.name, func(b *testing.B) {
			ctx := sweep.WithWorkers(context.Background(), bw.workers)
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig5(ctx, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 70 {
					b.Fatalf("got %d rows", len(rows))
				}
			}
		})
	}
}

// BenchmarkFig6Scaling regenerates figure 6: best-stepsize iteration
// counts for fully connected networks of 4..20 nodes (grid search
// included, as the paper's "best possible α" requires), serially and
// with the 510-cell (size × α) grid spread across every core.
func BenchmarkFig6Scaling(b *testing.B) {
	for _, bw := range benchWorkers {
		b.Run(bw.name, func(b *testing.B) {
			ctx := sweep.WithWorkers(context.Background(), bw.workers)
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig6(ctx, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 17 {
					b.Fatalf("got %d rows", len(rows))
				}
			}
		})
	}
}

// BenchmarkFig6WorkerMatrix crosses GOMAXPROCS with the sweep worker
// count on the figure-6 grid — the repo's largest sweep (510 cells) —
// so a single run shows how much of the chunked engine's speedup
// survives core starvation and worker oversubscription. Sub-benchmarks
// are named procs_<P>/workers_<W>; P values beyond the machine's CPU
// count are skipped rather than benchmarked as fiction.
func BenchmarkFig6WorkerMatrix(b *testing.B) {
	procsSet := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	workerSet := []int{1, 4, 8}
	seen := make(map[int]bool)
	for _, procs := range procsSet {
		if procs > runtime.NumCPU() || seen[procs] {
			continue
		}
		seen[procs] = true
		for _, workers := range workerSet {
			b.Run(fmt.Sprintf("procs_%d/workers_%d", procs, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				ctx := sweep.WithWorkers(context.Background(), workers)
				for i := 0; i < b.N; i++ {
					rows, err := experiments.Fig6(ctx, nil)
					if err != nil {
						b.Fatal(err)
					}
					if len(rows) != 17 {
						b.Fatalf("got %d rows", len(rows))
					}
				}
			})
		}
	}
}

// BenchmarkFig8MultiCopyProfiles regenerates figure 8: the two 60-
// iteration multi-copy ring profiles.
func BenchmarkFig8MultiCopyProfiles(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		profiles, err := experiments.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 2 {
			b.Fatalf("got %d profiles", len(profiles))
		}
	}
}

// BenchmarkFig9OscillationDamping regenerates figure 9: fixed α = 0.1 and
// 0.05 profiles plus the adaptive-decay run.
func BenchmarkFig9OscillationDamping(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		profiles, err := experiments.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 3 {
			b.Fatalf("got %d profiles", len(profiles))
		}
	}
}

// BenchmarkValidationSim regenerates the E7 validation table (analytic vs
// discrete-event simulation) at a reduced access count per row.
func BenchmarkValidationSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validate(30000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAblationSecondOrder regenerates the E8 scale-resilience table.
func BenchmarkAblationSecondOrder(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSecondOrder(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkDecentralizedRuntime regenerates the E9 table: full protocol
// runs (broadcast and coordinator) over the in-memory transport, including
// goroutine spawn, JSON codec, and round synchronization.
func BenchmarkDecentralizedRuntime(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDecentralized(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAblationPriceDirected regenerates the E10 mechanism-contrast
// report.
func BenchmarkAblationPriceDirected(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPriceDirected(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalCopies regenerates the E11 replication-degree sweep
// (six oscillation-tolerant multi-copy solves).
func BenchmarkOptimalCopies(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := experiments.OptimalCopies(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// BenchmarkNeighborOnly regenerates the E13 neighbours-only comparison.
func BenchmarkNeighborOnly(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NeighborOnly(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAvailability regenerates the E14 graceful-degradation table.
func BenchmarkAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Availability(0.1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAdaptiveEstimation regenerates the E12 estimation-driven
// adaptation table (three full drift simulations with periodic
// re-planning).
func BenchmarkAdaptiveEstimation(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Adaptive(ctx, nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkQuantize regenerates the E15 record-rounding table.
func BenchmarkQuantize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Quantize(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkRecordPopularity regenerates the E16 non-uniform-popularity
// table (optimization + four Zipf partitions of 10000 records).
func BenchmarkRecordPopularity(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RecordPopularity(ctx, nil, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// ---- catalog benchmarks (cold fill vs warm re-solve) ----

// catalogBenchSize is the catalog scale for the cold/warm contrast: large
// enough that per-object overheads dominate noise, and the scale the
// warm-over-cold throughput gate in scripts/check.sh is recorded at.
const catalogBenchSize = 100000

func newBenchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat, err := catalog.New(catalog.Config{
		Objects:       catalogBenchSize,
		DriftFraction: 0.1,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

// BenchmarkCatalogCold measures a full cold fill: every object solved
// from the uniform allocation. ns/op is one pass over the whole catalog.
func BenchmarkCatalogCold(b *testing.B) {
	ctx := context.Background()
	cat := newBenchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := cat.SolveCold(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if st.Cold != catalogBenchSize {
			b.Fatalf("cold pass solved %d of %d objects", st.Cold, catalogBenchSize)
		}
	}
	b.ReportMetric(float64(catalogBenchSize)*float64(b.N)/b.Elapsed().Seconds(), "objects/s")
}

// BenchmarkCatalogWarm measures one re-solve epoch after 10% of objects
// drift: un-drifted objects are skipped via their estimate trackers and
// the rest take KKT-certified incremental steps. Drift synthesis runs
// with the timer stopped, so ns/op is the re-solve pass alone — directly
// comparable to BenchmarkCatalogCold's pass over the same catalog.
func BenchmarkCatalogWarm(b *testing.B) {
	ctx := context.Background()
	cat := newBenchCatalog(b)
	if _, err := cat.SolveCold(ctx); err != nil {
		b.Fatal(err)
	}
	if err := cat.Sense(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := cat.Drift(ctx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := cat.ReSolve(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if st.Drifted == 0 || st.Skipped == 0 {
			b.Fatalf("degenerate epoch: %+v", st)
		}
	}
	b.ReportMetric(float64(catalogBenchSize)*float64(b.N)/b.Elapsed().Seconds(), "objects/s")
}

// ---- micro-benchmarks of the hot paths ----

func benchModel(b *testing.B, n int) *costmodel.SingleFile {
	b.Helper()
	mesh, err := topology.FullMesh(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	access, err := topology.AccessCosts(mesh, topology.UniformRates(n, 1), topology.RoundTrip)
	if err != nil {
		b.Fatal(err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkGradient64 measures one marginal-utility evaluation on a
// 64-node system — the per-node, per-round work of the protocol.
func BenchmarkGradient64(b *testing.B) {
	m := benchModel(b, 64)
	x := make([]float64, 64)
	for i := range x {
		x[i] = 1.0 / 64
	}
	grad := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Gradient(grad, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanStep64 measures one active-set re-allocation plan.
func BenchmarkPlanStep64(b *testing.B) {
	m := benchModel(b, 64)
	x := make([]float64, 64)
	x[0] = 1 // worst case: boundary handling engaged
	grad := make([]float64, 64)
	if err := m.Gradient(grad, x); err != nil {
		b.Fatal(err)
	}
	group := make([]int, 64)
	for i := range group {
		group[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanStep(x, grad, group, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve256 measures a full solve on a 256-node mesh with the
// dynamic Theorem-2 stepsize.
func BenchmarkSolve256(b *testing.B) {
	m := benchModel(b, 256)
	init := make([]float64, 256)
	init[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := core.NewAllocator(m, core.WithEpsilon(1e-6), core.WithDynamicAlpha(0.5))
		if err != nil {
			b.Fatal(err)
		}
		res, err := alloc.Run(context.Background(), init)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("did not converge: %+v", res.Reason)
		}
	}
}

// BenchmarkSolveKKT measures the water-filling reference solver.
func BenchmarkSolveKKT(b *testing.B) {
	m := benchModel(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveKKT(1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingGradient measures the piecewise-analytic gradient of the
// 32-node multi-copy ring (O(n²) prefix walks).
func BenchmarkRingGradient(b *testing.B) {
	costs := make([]float64, 32)
	for i := range costs {
		costs[i] = 1
	}
	r, err := multicopy.New(multicopy.Config{
		LinkCosts:    costs,
		Rates:        []float64{1},
		ServiceRates: []float64{2},
		K:            1,
		Copies:       3,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 32)
	for i := range x {
		x[i] = 3.0 / 32
	}
	grad := make([]float64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Gradient(grad, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures discrete-event throughput (accesses
// simulated per op: 10000).
func BenchmarkSimulator(b *testing.B) {
	ring, err := topology.Ring(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := topology.PairCosts(ring, topology.RoundTrip)
	if err != nil {
		b.Fatal(err)
	}
	service := make([]sim.Sampler, 4)
	for i := range service {
		service[i] = sim.ExpSampler{Rate: 1.5}
	}
	w := sim.SingleFileWorkload([]float64{0.25, 0.25, 0.25, 0.25},
		topology.UniformRates(4, 1), pair, service, 1)
	w.Accesses = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Seed = int64(i)
		if _, err := sim.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipRound runs one full tree-mode aggregation solve over a
// 64-node random connected graph per iteration and reports the wire
// bill alongside ns/op: msgs/round and bytes/round are the quantities
// the gossip subsystem exists to shrink versus the N(N-1) broadcast
// reference (E19), so a regression here is a protocol regression even
// when the wall clock holds steady.
func BenchmarkGossipRound(b *testing.B) {
	const n = 64
	ctx := context.Background()
	g, err := topology.RandomConnected(n, 2*n, 0.1, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	models := make([]agent.LocalModel, n)
	for i := range models {
		models[i] = agent.LocalModel{
			AccessCost:  0.5 + 2*rng.Float64(),
			ServiceRate: 1.5 + rng.Float64(),
			Lambda:      1,
			K:           1,
		}
	}
	init := make([]float64, n)
	for i := range init {
		init[i] = 1 / float64(n)
	}
	b.ResetTimer()
	var bill gossip.Bill
	for i := 0; i < b.N; i++ {
		res, err := gossip.RunCluster(ctx, gossip.ClusterConfig{
			Graph:  g,
			Models: models,
			Init:   append([]float64(nil), init...),
			Alpha:  0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged || !res.Certified {
			b.Fatalf("converged=%v certified=%v after %d rounds",
				res.Converged, res.Certified, res.Rounds)
		}
		bill = res.Bill
	}
	b.ReportMetric(bill.MessagesPerRound(), "msgs/round")
	b.ReportMetric(bill.BytesPerRound(), "bytes/round")
}
