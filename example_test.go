package filealloc_test

import (
	"context"
	"fmt"
	"log"

	"filealloc"
)

// Example reproduces the paper's headline system: a 4-node ring with
// symmetric traffic, where the optimal plan fragments the file evenly and
// beats the best whole-file placement by 30%.
func Example() {
	plan, err := filealloc.Plan(context.Background(),
		filealloc.Ring(4, 1),
		filealloc.Workload{
			AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
			ServiceRates: []float64{1.5},
			DelayWeight:  1,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fractions: %.2f\n", plan.Fractions)
	fmt.Printf("cost: %.2f\n", plan.Cost)
	// Output:
	// fractions: [0.25 0.25 0.25 0.25]
	// cost: 2.80
}

// ExampleEvaluate compares a hand-rolled placement against the optimum.
func ExampleEvaluate() {
	net := filealloc.Ring(4, 1)
	w := filealloc.Workload{
		AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
		ServiceRates: []float64{1.5},
		DelayWeight:  1,
	}
	wholeFile, err := filealloc.Evaluate(net, w, []float64{1, 0, 0, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole file at node 0 costs %.1f per access\n", wholeFile)
	// Output:
	// whole file at node 0 costs 4.0 per access
}

// ExampleResult_RecordCounts rounds a plan to whole records.
func ExampleResult_RecordCounts() {
	plan, err := filealloc.Plan(context.Background(),
		filealloc.Ring(4, 1),
		filealloc.Workload{
			AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
			ServiceRates: []float64{1.5},
			DelayWeight:  1,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := plan.RecordCounts(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts)
	// Output:
	// [25 25 25 25]
}
