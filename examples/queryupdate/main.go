// Queryupdate: distinguish cheap queries from expensive updates (§5.4).
//
// A 5-node line network hosts a file that everyone queries but only one
// node (the ingest node at the end of the line) updates. Updates carry
// 4x the communication cost of queries. The example contrasts the
// allocation that models the two classes separately with the naive one
// that treats all accesses alike: the class-aware plan pulls the file
// toward the writer and pays measurably less.
//
// Run with:
//
//	go run ./examples/queryupdate
package main

import (
	"context"
	"fmt"
	"log"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryupdate: ")

	const n = 5
	line, err := topology.Line(n, 1)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := topology.PairCosts(line, topology.RoundTrip)
	if err != nil {
		log.Fatal(err)
	}
	// Updates move 4x the bytes of queries.
	updateCosts := make([][]float64, n)
	for i := range updateCosts {
		updateCosts[i] = make([]float64, n)
		for j := range updateCosts[i] {
			updateCosts[i][j] = 4 * pair[i][j]
		}
	}

	// Everyone queries at 0.15; node 4 additionally writes at 0.25.
	queryRates := []float64{0.15, 0.15, 0.15, 0.15, 0.15}
	updateRates := []float64{0, 0, 0, 0, 0.25}

	spec := costmodel.QueryUpdateSpec{
		QueryRates:  queryRates,
		UpdateRates: updateRates,
		QueryCosts:  pair,
		UpdateCosts: updateCosts,
	}
	aware, err := costmodel.NewQueryUpdateSingleFile(spec, []float64{2}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The naive model: same total traffic, but every access billed at
	// query cost.
	totalRates := make([]float64, n)
	for i := range totalRates {
		totalRates[i] = queryRates[i] + updateRates[i]
	}
	naiveAccess, err := topology.AccessCosts(line, totalRates, topology.RoundTrip)
	if err != nil {
		log.Fatal(err)
	}
	var lambda float64
	for _, r := range totalRates {
		lambda += r
	}
	naive, err := costmodel.NewSingleFile(naiveAccess, []float64{2}, lambda, 1)
	if err != nil {
		log.Fatal(err)
	}

	solve := func(m core.Objective) []float64 {
		alloc, err := core.NewAllocator(m, core.WithAlpha(0.1), core.WithEpsilon(1e-9), core.WithKKTCheck())
		if err != nil {
			log.Fatal(err)
		}
		init := make([]float64, n)
		for i := range init {
			init[i] = 1.0 / n
		}
		res, err := alloc.Run(context.Background(), init)
		if err != nil {
			log.Fatal(err)
		}
		return res.X
	}

	awareX := solve(aware)
	naiveX := solve(naive)

	awareCost, err := aware.Cost(awareX)
	if err != nil {
		log.Fatal(err)
	}
	naiveUnderTruth, err := aware.Cost(naiveX)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("class-aware allocation: %.3v (writer-side mass: %.2f)\n",
		awareX, awareX[3]+awareX[4])
	fmt.Printf("class-blind allocation: %.3v (writer-side mass: %.2f)\n",
		naiveX, naiveX[3]+naiveX[4])
	fmt.Printf("true expected cost: aware %.4f vs blind %.4f (%.1f%% saved)\n",
		awareCost, naiveUnderTruth, 100*(naiveUnderTruth-awareCost)/naiveUnderTruth)
	if awareCost > naiveUnderTruth {
		log.Fatal("class-aware plan should not cost more under the true model")
	}
}
