// Capacity: plan a deployment end to end — how many copies, where, and
// what it buys you.
//
// A 6-node ring with one slow WAN link hosts a file with a 15% write
// share. The example sweeps the replication degree with storage and
// update-propagation costs (§8.2's "how many copies are optimal?"),
// reports the availability each degree buys under node failures (§4's
// graceful degradation), and emits the record-level placement for the
// chosen plan (§8.1).
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"context"
	"fmt"
	"log"

	"filealloc/internal/avail"
	"filealloc/internal/multicopy"
	"filealloc/internal/quantize"
	"filealloc/internal/replication"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	linkCosts := []float64{1, 1, 1, 1, 1, 4} // link 5→0 crosses the WAN
	res, err := replication.OptimalCopies(context.Background(), replication.Config{
		LinkCosts:       linkCosts,
		Rates:           []float64{1},
		ServiceRates:    []float64{1.5},
		K:               1,
		UpdateShare:     0.15,
		StoragePerCopy:  0.3,
		PropagationCost: 2,
		MaxCopies:       5,
		Solve: multicopy.SolveConfig{
			Alpha:         0.1,
			CostDelta:     1e-6,
			MaxIterations: 2000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	failProbs := avail.UniformFailure(len(linkCosts), 0.05)
	fmt.Printf("%-4s %-12s %-12s %-14s %-12s %s\n",
		"m", "access", "storage", "consistency", "total", "availability @ p=0.05")
	for i, row := range res.Rows {
		a, err := avail.MultiCopyRing(row.X, failProbs)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if i == res.Best {
			marker = "  ← chosen"
		}
		fmt.Printf("%-4d %-12.4f %-12.4f %-14.4f %-12.4f %.4f%s\n",
			row.M, row.AccessCost, row.StorageCost, row.ConsistencyCost, row.TotalCost, a, marker)
	}

	best := res.Rows[res.Best]
	fmt.Printf("\nchosen plan: m=%d, allocation %.3v\n", best.M, best.X)

	const records = 2000
	counts, err := quantize.Records(best.X, records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record placement (%d records/copy): %v\n", records, counts)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != best.M*records {
		log.Fatalf("record conservation broken: %d != %d", total, best.M*records)
	}
	fmt.Printf("rounding deviation: %.5f (≤ one record = %.5f)\n",
		quantize.MaxDeviation(best.X, counts, records), 1.0/records)
}
