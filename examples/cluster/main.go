// Cluster: run the actual decentralized protocol over TCP sockets.
//
// Five agents — each knowing only its own access cost, service rate, and
// the system-wide parameters — exchange marginal utilities over TCP
// loopback connections and negotiate the optimal allocation with no
// central solver anywhere in the process (broadcast mode). The example
// then verifies the negotiated allocation equalizes marginal costs, the
// optimality condition of section 5.3.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster: ")

	const n = 5
	// An asymmetric line topology: end nodes are expensive to reach, the
	// middle node is central, and service rates differ per node.
	line, err := topology.Line(n, 1)
	if err != nil {
		log.Fatal(err)
	}
	rates := []float64{0.3, 0.2, 0.2, 0.2, 0.1} // λ = 1
	access, err := topology.AccessCosts(line, rates, topology.RoundTrip)
	if err != nil {
		log.Fatal(err)
	}
	service := []float64{1.6, 1.8, 2.2, 1.8, 1.6}
	model, err := costmodel.NewSingleFile(access, service, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Bind one TCP endpoint per agent on an ephemeral loopback port,
	// then exchange the address book — the same bootstrap a real
	// deployment would do through its configuration system.
	placeholder := make([]string, n)
	for i := range placeholder {
		placeholder[i] = "127.0.0.1:0"
	}
	endpoints := make([]*transport.TCPEndpoint, n)
	for i := 0; i < n; i++ {
		ep, err := transport.ListenTCP(i, placeholder)
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		endpoints[i] = ep
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := endpoints[i].SetPeerAddr(j, endpoints[j].Addr()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	models := agent.ModelsFromSingleFile(model)
	outcomes := make([]agent.Outcome, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = agent.Run(context.Background(), agent.Config{
				Endpoint: endpoints[i],
				Model:    models[i],
				Init:     1.0 / n,
				Alpha:    0.2,
				Epsilon:  1e-6,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
	}

	x := make([]float64, n)
	messages := 0
	for i, out := range outcomes {
		x[i] = out.X
		messages += out.MessagesSent
	}
	cost, err := model.Cost(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated in %d rounds (%d TCP messages, %s)\n",
		outcomes[0].Rounds, messages, time.Since(start).Round(time.Millisecond))
	fmt.Printf("allocation: %.4v\n", x)
	fmt.Printf("expected cost per access: %.4f\n", cost)

	// Verify the section 5.3 optimality condition: equal marginal costs
	// on the support.
	grad := make([]float64, n)
	if err := model.Gradient(grad, x); err != nil {
		log.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, xi := range x {
		if xi > 1e-9 {
			lo = math.Min(lo, grad[i])
			hi = math.Max(hi, grad[i])
		}
	}
	fmt.Printf("marginal-cost spread on the support: %.2e (optimality: → 0)\n", hi-lo)
	if hi-lo > 1e-5 {
		log.Fatal("allocation does not satisfy the optimality condition")
	}
}
