// Multifile: allocate several distinct files that share node queues.
//
// Section 5.4's extension: two files with different popularity are placed
// on a 5-node star. Every fragment stored at a node adds to that node's
// queue load, so the hot file's placement reshapes where the cold file
// wants to live — the "resource contention phenomenon which is typically
// not considered in most FAP formulations". The example contrasts the
// coupled optimum with the naive per-file optimization that ignores the
// shared queues.
//
// Run with:
//
//	go run ./examples/multifile
package main

import (
	"context"
	"fmt"
	"log"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multifile: ")

	const nodes = 5
	star, err := topology.Star(nodes, 1)
	if err != nil {
		log.Fatal(err)
	}

	// File 0 is hot (rate 1.2), file 1 is cold (rate 0.3). Both are
	// accessed uniformly from all nodes.
	hotRate, coldRate := 1.2, 0.3
	accessHot, err := topology.AccessCosts(star, topology.UniformRates(nodes, hotRate), topology.RoundTrip)
	if err != nil {
		log.Fatal(err)
	}
	accessCold, err := topology.AccessCosts(star, topology.UniformRates(nodes, coldRate), topology.RoundTrip)
	if err != nil {
		log.Fatal(err)
	}

	const mu = 2.5 // per-node service rate; must exceed λ_hot + λ_cold
	model, err := costmodel.NewMultiFile(
		[][]float64{accessHot, accessCold},
		[]float64{mu},
		[]float64{hotRate, coldRate},
		1, // k
		costmodel.ShareWeights,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Start both files spread evenly; the solver re-allocates each file
	// under its own conservation constraint while the gradients couple
	// through the shared queues.
	init := make([]float64, model.Dim())
	for f := 0; f < model.Files(); f++ {
		for i := 0; i < nodes; i++ {
			init[model.Index(f, i)] = 1.0 / nodes
		}
	}
	alloc, err := core.NewAllocator(model,
		core.WithAlpha(0.1),
		core.WithEpsilon(1e-8),
		core.WithKKTCheck(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), init)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := model.Cost(res.X)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled optimum after %d iterations (converged=%v), expected cost %.4f\n",
		res.Iterations, res.Converged, cost)
	for f := 0; f < model.Files(); f++ {
		name := "hot "
		if f == 1 {
			name = "cold"
		}
		fmt.Printf("  file %d (%s): ", f, name)
		for i := 0; i < nodes; i++ {
			fmt.Printf("%.3f ", res.X[model.Index(f, i)])
		}
		fmt.Println()
	}

	// Naive comparison: optimize each file alone as if it had the
	// node's full service capacity to itself, then evaluate the
	// combined placement under the true shared-queue model.
	naive := make([]float64, model.Dim())
	for f, spec := range []struct {
		access []float64
		rate   float64
	}{{accessHot, hotRate}, {accessCold, coldRate}} {
		single, err := costmodel.NewSingleFile(spec.access, []float64{mu}, spec.rate, 1)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := single.SolveKKT(1e-10)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			naive[model.Index(f, i)] = sol.X[i]
		}
	}
	naiveCost, err := model.Cost(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-file (contention-blind) optimization costs %.4f under the real model\n", naiveCost)
	fmt.Printf("modelling the shared queues saves %.2f%%\n", 100*(naiveCost-cost)/naiveCost)
}
