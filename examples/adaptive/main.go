// Adaptive: re-optimize the allocation as the workload drifts.
//
// The paper's section 8 envisions the algorithm running "in the
// background ... occasionally at night (or whenever the system is lightly
// loaded) to gradually improve the allocation" and "adaptively changing
// the file allocation as the nodal file access characteristics change
// dynamically". This example simulates a day/night workload shift on a
// 6-node ring: the access pattern tilts from the "office" nodes to the
// "batch" nodes every epoch, and a few background iterations per epoch
// keep the allocation near-optimal. Because every iteration is feasible
// and monotone, the system can serve traffic from the intermediate
// allocations at all times.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

const (
	nodes         = 6
	mu            = 2.0
	k             = 1.0
	epochs        = 8
	stepsPerEpoch = 6 // "background" iterations granted per epoch
	totalRate     = 1.0
)

// workloadAt returns the per-node access rates for epoch e: a smooth tilt
// between the office half (nodes 0-2) and the batch half (nodes 3-5).
func workloadAt(e int) []float64 {
	phase := float64(e) / float64(epochs-1) // 0 = day, 1 = night
	rates := make([]float64, nodes)
	officeShare := 0.85 - 0.7*phase // 85% of traffic by day, 15% by night
	for i := 0; i < nodes; i++ {
		if i < nodes/2 {
			rates[i] = totalRate * officeShare / float64(nodes/2)
		} else {
			rates[i] = totalRate * (1 - officeShare) / float64(nodes-nodes/2)
		}
	}
	return rates
}

func modelFor(g *topology.Graph, rates []float64) (*costmodel.SingleFile, error) {
	access, err := topology.AccessCosts(g, rates, topology.RoundTrip)
	if err != nil {
		return nil, err
	}
	return costmodel.NewSingleFile(access, []float64{mu}, totalRate, k)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptive: ")

	ring, err := topology.Ring(nodes, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Start from the day-optimal allocation.
	x := make([]float64, nodes)
	for i := range x {
		x[i] = 1.0 / nodes
	}

	fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "epoch", "cost before", "cost after", "optimal", "allocation after background steps")
	for e := 0; e < epochs; e++ {
		model, err := modelFor(ring, workloadAt(e))
		if err != nil {
			log.Fatal(err)
		}
		before, err := model.Cost(x)
		if err != nil {
			log.Fatal(err)
		}

		// A handful of background iterations from the PREVIOUS epoch's
		// allocation: feasible and strictly improving at every step, so
		// the file can keep serving traffic throughout.
		alloc, err := core.NewAllocator(model,
			core.WithAlpha(0.3),
			core.WithEpsilon(1e-9),
			core.WithMaxIterations(stepsPerEpoch),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alloc.Run(context.Background(), x)
		if err != nil {
			log.Fatal(err)
		}
		x = res.X
		after, err := model.Cost(x)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := model.SolveKKT(1e-10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-12.4f %-12.4f %-12.4f %.3v\n", e, before, after, sol.Cost, x)
		if after > before+1e-12 {
			log.Fatalf("epoch %d: background steps made things worse (%.6f -> %.6f)", e, before, after)
		}
		if gap := (after - sol.Cost) / sol.Cost; gap > 0.05 && e > 0 {
			fmt.Printf("       (still %.1f%% from optimal — next epoch's budget continues the descent)\n", 100*gap)
		}
	}

	// Confirm the final night allocation has shifted mass to the batch
	// nodes.
	var office, batch float64
	for i, xi := range x {
		if i < nodes/2 {
			office += xi
		} else {
			batch += xi
		}
	}
	fmt.Printf("\nfinal split: office %.2f / batch %.2f (night traffic lives on batch nodes)\n", office, batch)
	if math.IsNaN(office) || batch <= office {
		log.Fatal("adaptation failed to follow the workload")
	}
}
