// Multicopy: place two copies of a file around a virtual ring (§7).
//
// Two copies of the file are laid end-to-end around a 6-node
// unidirectional ring with one expensive link. Readers take their own
// fragment first and walk forward until they have seen a whole copy, so
// the cost function is only piecewise smooth and the plain iteration
// oscillates; the example runs the section 7.3 oscillation-tolerant
// solver (stepsize decay + best-observed tracking) and reports where the
// copies ended up.
//
// Run with:
//
//	go run ./examples/multicopy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"filealloc/internal/core"
	"filealloc/internal/multicopy"
	"filealloc/internal/quantize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multicopy: ")

	ring, err := multicopy.New(multicopy.Config{
		// Link 5→0 is a slow WAN hop; the rest are cheap LAN links.
		LinkCosts:    []float64{1, 1, 1, 1, 1, 5},
		Rates:        []float64{1}, // λ = 1 split uniformly
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Awful start: both copies stacked on node 0.
	init := []float64{2, 0, 0, 0, 0, 0}
	startCost, err := ring.Cost(init)
	if err != nil {
		log.Fatal(err)
	}

	var profile []float64
	res, err := ring.Solve(context.Background(), init, multicopy.SolveConfig{
		Alpha:     0.1,
		CostDelta: 1e-7,
		OnIteration: func(it core.Iteration) {
			profile = append(profile, -it.Utility)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("start: both copies at node 0, cost %.4f\n", startCost)
	fmt.Printf("solved in %d iterations (%v): best cost %.4f (%.1f%% cheaper)\n",
		res.Iterations, res.Reason, res.Cost, 100*(startCost-res.Cost)/startCost)
	fmt.Printf("allocation (fractions of a copy per node): %.3v\n", res.X)

	// Where does each reader get its file from?
	demands, err := ring.Demands(res.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreader → fragments consumed (node:share):")
	for j, row := range demands {
		var parts []string
		for i, share := range row {
			if share > 1e-6 {
				parts = append(parts, fmt.Sprintf("%d:%.2f", i, share))
			}
		}
		fmt.Printf("  node %d ← %s\n", j, strings.Join(parts, " "))
	}

	// Round to records for deployment: 2 copies of a 500-record file.
	counts, err := quantize.Records(res.X, 500)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("\nas records (500/copy): %v (total %d = 2 copies)\n", counts, total)

	// The oscillation profile: early rapid descent, damped tail.
	if len(profile) > 10 {
		fmt.Printf("cost profile (first 10): %.3v...\n", profile[:10])
	}
}
