// Quickstart: fragment one file optimally over a small network.
//
// This example reproduces the paper's headline scenario: a 4-node ring
// where every node queries the file equally often. Concentrating the file
// on one node minimizes nothing — the queueing delay there explodes —
// while spreading it evenly costs extra communication. The planner finds
// the optimum balancing both, and the example shows the cost of the
// alternatives for comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"filealloc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A 4-node ring with unit link costs. Every node generates file
	// accesses at rate 0.25 (λ = 1 in total), every node serves
	// accesses at rate μ = 1.5, and one unit of expected delay is worth
	// one unit of communication cost (k = 1).
	network := filealloc.Ring(4, 1)
	workload := filealloc.Workload{
		AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
		ServiceRates: []float64{1.5},
		DelayWeight:  1,
	}

	// Start from the worst case — the whole file piled on node 0 — and
	// let the algorithm fragment it.
	plan, err := filealloc.Plan(context.Background(), network, workload,
		filealloc.WithInitial([]float64{1, 0, 0, 0}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal fragmentation: %.4v\n", plan.Fractions)
	fmt.Printf("expected cost per access: %.4f (communication %.4f + delay %.4f)\n",
		plan.Cost, plan.CommCost, plan.Delay)
	fmt.Printf("solver: %d iterations, converged=%v\n\n", plan.Iterations, plan.Converged)

	// Compare against the classical alternatives.
	wholeFile := []float64{1, 0, 0, 0}
	whole, err := filealloc.Evaluate(network, workload, wholeFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole file at node 0 (classical integral FAP): cost %.4f (+%.0f%%)\n",
		whole, 100*(whole-plan.Cost)/plan.Cost)

	// Files are made of records: round the plan to 1000 records.
	counts, err := plan.RecordCounts(1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as records (of 1000): %v\n", counts)
}
