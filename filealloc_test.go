package filealloc

import (
	"context"
	"errors"
	"math"
	"testing"
)

func paperWorkload() Workload {
	return Workload{
		AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
		ServiceRates: []float64{1.5},
		DelayWeight:  1,
	}
}

func TestPlanPaperSystem(t *testing.T) {
	plan, err := Plan(context.Background(), Ring(4, 1), paperWorkload())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if !plan.Converged {
		t.Fatalf("did not converge: %+v", plan)
	}
	for i, f := range plan.Fractions {
		if math.Abs(f-0.25) > 1e-4 {
			t.Errorf("fraction[%d] = %g, want 0.25", i, f)
		}
	}
	if math.Abs(plan.Cost-2.8) > 1e-6 {
		t.Errorf("cost = %g, want 2.8", plan.Cost)
	}
	if math.Abs(plan.CommCost-2) > 1e-6 || math.Abs(plan.Delay-0.8) > 1e-6 {
		t.Errorf("components = %g + %g, want 2 + 0.8", plan.CommCost, plan.Delay)
	}
}

func TestPlanWithFixedStepsizeAndStart(t *testing.T) {
	var iterations int
	plan, err := Plan(context.Background(), Ring(4, 1), paperWorkload(),
		WithStepsize(0.3),
		WithTolerance(1e-3),
		WithInitial([]float64{0.8, 0.1, 0.1, 0}),
		WithProgress(func(it int, cost float64, x []float64) { iterations = it }),
	)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// The figure-3 α=0.3 run: 9-10 iterations.
	if plan.Iterations < 8 || plan.Iterations > 11 {
		t.Errorf("iterations = %d, want ≈ 9 (figure 3)", plan.Iterations)
	}
	if iterations != plan.Iterations {
		t.Errorf("progress hook saw %d iterations, result says %d", iterations, plan.Iterations)
	}
}

func TestPlanAsymmetricFavorsHub(t *testing.T) {
	// On a star, the hub is cheapest to access; it must receive the
	// largest fragment.
	w := Workload{
		AccessRates:  []float64{0.2, 0.2, 0.2, 0.2, 0.2},
		ServiceRates: []float64{2},
		DelayWeight:  1,
	}
	plan, err := Plan(context.Background(), Star(5, 1), w)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	for i := 1; i < 5; i++ {
		if plan.Fractions[0] <= plan.Fractions[i] {
			t.Errorf("hub fraction %g not above leaf %d's %g", plan.Fractions[0], i, plan.Fractions[i])
		}
	}
}

func TestPlanMaxIterationsStillFeasible(t *testing.T) {
	plan, err := Plan(context.Background(), Ring(4, 1), paperWorkload(),
		WithStepsize(0.001),
		WithTolerance(1e-9),
		WithMaxIterations(3),
		WithInitial([]float64{1, 0, 0, 0}),
	)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Converged {
		t.Error("claimed convergence after 3 tiny steps")
	}
	var sum float64
	for _, f := range plan.Fractions {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("premature plan sums to %g", sum)
	}
}

func TestPlanValidation(t *testing.T) {
	tests := []struct {
		name string
		net  Network
		w    Workload
	}{
		{"too few nodes", Network{Nodes: 1}, paperWorkload()},
		{"bad link", Network{Nodes: 3, Links: []Link{{From: 0, To: 9, Cost: 1}}}, paperWorkload()},
		{"rate count", Ring(4, 1), Workload{AccessRates: []float64{1}, ServiceRates: []float64{2}, DelayWeight: 1}},
		{"disconnected", Network{Nodes: 3, Links: []Link{{From: 0, To: 1, Cost: 1}}}, Workload{AccessRates: []float64{1, 1, 1}, ServiceRates: []float64{5}, DelayWeight: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Plan(context.Background(), tt.net, tt.w); !errors.Is(err, ErrBadSpec) {
				t.Errorf("error = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestEvaluateMatchesPlanCost(t *testing.T) {
	net := Ring(4, 1)
	w := paperWorkload()
	got, err := Evaluate(net, w, []float64{0, 0, 0, 1})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Integral placement on the unit ring: 2 + 1/(1.5−1) = 4.
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("integral cost = %g, want 4", got)
	}
	plan, err := Plan(context.Background(), net, w)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Evaluate(net, w, plan.Fractions)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replay-plan.Cost) > 1e-9 {
		t.Errorf("Evaluate(plan) = %g, plan.Cost = %g", replay, plan.Cost)
	}
}

func TestRecordCounts(t *testing.T) {
	plan, err := Plan(context.Background(), Ring(4, 1), paperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	counts, err := plan.RecordCounts(1000)
	if err != nil {
		t.Fatalf("RecordCounts: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Errorf("records total %d, want 1000", total)
	}
	if _, err := plan.RecordCounts(0); err == nil {
		t.Error("zero records accepted")
	}
}

func TestFullMeshTopologyHelper(t *testing.T) {
	net := FullMesh(6, 2)
	if len(net.Links) != 15 {
		t.Errorf("mesh links = %d, want 15", len(net.Links))
	}
	w := Workload{
		AccessRates:  []float64{0.2, 0.2, 0.2, 0.2, 0.1, 0.1},
		ServiceRates: []float64{1.5},
		DelayWeight:  1,
	}
	plan, err := Plan(context.Background(), net, w)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if !plan.Converged {
		t.Errorf("mesh plan did not converge")
	}
	// Higher-rate nodes are cheaper for the system to access (their own
	// traffic is free), so they hold at least as much of the file.
	if plan.Fractions[0] < plan.Fractions[4] {
		t.Errorf("heavy node fraction %g below light node %g", plan.Fractions[0], plan.Fractions[4])
	}
}
