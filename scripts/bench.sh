#!/usr/bin/env sh
# Figure-benchmark harness: runs the serial and parallel variants of the
# figure benchmarks and emits machine-readable BENCH_figures.json next to
# this repo's root, one object per benchmark with ns/op and the
# parallel-over-serial speedup per figure.
#
# Usage:
#
#	scripts/bench.sh [bench-regex] [benchtime]
#
# defaults: 'Fig' (every figure benchmark) and 5x. The JSON is built with
# awk from `go test -bench` output — no extra tooling required.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-Fig}"
BENCHTIME="${2:-5x}"
OUT="BENCH_figures.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench $PATTERN -benchtime $BENCHTIME"
# Capture first, pipe never: POSIX sh has no pipefail, so
# `go test ... | tee` would swallow a failing benchmark run and the awk
# stage below would happily emit a truncated $OUT. Fail loudly instead,
# leaving any previous $OUT untouched.
if ! go test -bench "$PATTERN" -benchtime "$BENCHTIME" -run '^$' . > "$RAW" 2>&1; then
	cat "$RAW" >&2
	echo "bench.sh: go test -bench failed; $OUT not written" >&2
	exit 1
fi
cat "$RAW"

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
awk -v cores="$CORES" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ && NF >= 4 && $3 == "ns/op" || (/^Benchmark/ && $4 == "ns/op") {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
	iters[n] = $2
	nsop[n] = $3
	names[n] = name
	n++
}
END {
	printf "{\n"
	printf "  \"schema\": \"filealloc-bench/1\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"gomaxprocs\": %s,\n", cores
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
			names[i], iters[i], nsop[i], (i < n-1 ? "," : "")
	}
	printf "  ],\n"
	printf "  \"speedups\": [\n"
	first = 1
	for (i = 0; i < n; i++) {
		if (names[i] !~ /\/serial$/) continue
		base = names[i]
		sub(/\/serial$/, "", base)
		for (j = 0; j < n; j++) {
			if (names[j] == base "/parallel" && nsop[j] + 0 > 0) {
				if (!first) printf ",\n"
				first = 0
				printf "    {\"figure\": \"%s\", \"serial_ns\": %s, \"parallel_ns\": %s, \"speedup\": %.3f}", \
					base, nsop[i], nsop[j], nsop[i] / nsop[j]
			}
		}
	}
	if (!first) printf "\n"
	printf "  ]\n"
	printf "}\n"
}
' "$RAW" > "$OUT"

echo "== wrote $OUT"
