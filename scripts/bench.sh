#!/usr/bin/env sh
# Figure-benchmark harness: runs the serial and parallel variants of the
# figure benchmarks and emits machine-readable BENCH_figures.json next to
# this repo's root, one object per benchmark with ns/op and the
# parallel-over-serial speedup per figure.
#
# Usage:
#
#	scripts/bench.sh [bench-regex] [benchtime]
#
# defaults: 'Fig|Catalog|Gossip' (every figure benchmark, the catalog
# cold/warm contrast, and the gossip wire-bill round) and 5x. BENCH_OUT overrides
# the output path (check.sh's floor gate writes to a temp file so the
# committed trajectory is untouched). The JSON is built by
# scripts/bench_json.awk from `go test -bench` output — no extra tooling
# required; the awk stage itself is pinned by a fixture diff in check.sh.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-Fig|Catalog|Gossip}"
BENCHTIME="${2:-5x}"
OUT="${BENCH_OUT:-BENCH_figures.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench $PATTERN -benchtime $BENCHTIME"
# Capture first, pipe never: POSIX sh has no pipefail, so
# `go test ... | tee` would swallow a failing benchmark run and the awk
# stage below would happily emit a truncated $OUT. Fail loudly instead,
# leaving any previous $OUT untouched.
if ! go test -bench "$PATTERN" -benchtime "$BENCHTIME" -run '^$' . > "$RAW" 2>&1; then
	cat "$RAW" >&2
	echo "bench.sh: go test -bench failed; $OUT not written" >&2
	exit 1
fi
cat "$RAW"

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
awk -v cores="$CORES" -f scripts/bench_json.awk "$RAW" > "$OUT"

echo "== wrote $OUT"
