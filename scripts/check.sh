#!/usr/bin/env sh
# Tier-2 gate: everything tier-1 checks (build + tests) plus formatting,
# static analysis (go vet and the repo's own fapvet suite), the race
# detector, and a bench-harness regression check. Run before sending a
# change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED="$(gofmt -l . 2>&1 | grep -v '^internal/lint/testdata/' || true)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== fapvet ./..."
go run ./cmd/fapvet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos-churn matrix under -race"
# The crash-recovery and membership-churn scenarios are the tests most
# sensitive to scheduling; run them explicitly under the race detector so
# a cached ./... pass cannot mask them.
go test -race -count 1 \
	-run 'TestChaosChurnContract|TestChurn|TestCrash|TestDoubleCrash|TestPartitionDepart|TestDepartRejoin|TestSupervise|TestFaultCrash' \
	./internal/experiments/ ./internal/recovery/ ./internal/transport/

echo "== coverage floors (scripts/coverage.baseline)"
# Statement coverage must not regress below the recorded per-package
# floors. The floors carry slack, so a failure here means real test
# coverage was lost, not noise.
COVER="$(go test -cover ./...)" || { echo "$COVER" >&2; exit 1; }
echo "$COVER" | awk -v base=scripts/coverage.baseline '
BEGIN {
	while ((getline line < base) > 0) {
		if (line ~ /^#/ || line == "") continue
		n = split(line, f, " "); if (n >= 2) floor[f[1]] = f[2] + 0
	}
	close(base)
}
/coverage:/ {
	pkg = $2
	pct = -1
	for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1) + 0
	if (pkg in floor && pct >= 0) {
		seen[pkg] = 1
		if (pct < floor[pkg]) {
			printf "coverage: %s at %.1f%% is below its %d%% floor\n", pkg, pct, floor[pkg]
			bad = 1
		}
	}
}
END {
	for (p in floor) if (!(p in seen)) {
		printf "coverage: no result for %s -- stale baseline entry?\n", p
		bad = 1
	}
	exit bad
}'

echo "== bench smoke (go test -bench . -benchtime 1x)"
go test -bench . -benchtime 1x -run '^$' . > /dev/null

echo "== bench.sh failure propagation"
# A malformed benchtime makes `go test -bench` fail; bench.sh must exit
# nonzero instead of writing a truncated BENCH_figures.json.
if scripts/bench.sh Fig not-a-benchtime > /dev/null 2>&1; then
	echo "bench.sh swallowed a go test failure" >&2
	exit 1
fi

echo "ok"
