#!/usr/bin/env sh
# Tier-2 gate: everything tier-1 checks (build + tests) plus formatting,
# static analysis (go vet and the repo's own fapvet suite), the race
# detector, and a bench-harness regression check. Run before sending a
# change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED="$(gofmt -l . 2>&1 | grep -v '^internal/lint/testdata/' || true)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== fapvet ./..."
go run ./cmd/fapvet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos-churn matrix under -race"
# The crash-recovery and membership-churn scenarios are the tests most
# sensitive to scheduling; run them explicitly under the race detector so
# a cached ./... pass cannot mask them.
go test -race -count 1 \
	-run 'TestChaosChurnContract|TestChurn|TestCrash|TestDoubleCrash|TestPartitionDepart|TestDepartRejoin|TestSupervise|TestFaultCrash' \
	./internal/experiments/ ./internal/recovery/ ./internal/transport/

echo "== bench smoke (go test -bench . -benchtime 1x)"
go test -bench . -benchtime 1x -run '^$' . > /dev/null

echo "== bench.sh failure propagation"
# A malformed benchtime makes `go test -bench` fail; bench.sh must exit
# nonzero instead of writing a truncated BENCH_figures.json.
if scripts/bench.sh Fig not-a-benchtime > /dev/null 2>&1; then
	echo "bench.sh swallowed a go test failure" >&2
	exit 1
fi

echo "ok"
