#!/usr/bin/env sh
# Tier-2 gate: everything tier-1 checks (build + tests) plus static
# analysis and the race detector. Run before sending a change.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (go test -bench . -benchtime 1x)"
go test -bench . -benchtime 1x -run '^$' . > /dev/null

echo "ok"
