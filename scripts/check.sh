#!/usr/bin/env sh
# Tier-2 gate: everything tier-1 checks (build + tests) plus formatting,
# static analysis (go vet and the repo's own fapvet suite), the race
# detector, and a bench-harness regression check. Run before sending a
# change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED="$(gofmt -l . 2>&1 | grep -v '^internal/lint/testdata/' || true)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== fapvet -unused-ignores ./..."
# Full eight-analyzer suite plus the stale-suppression audit: a directive
# that stopped suppressing anything fails the gate until it is deleted.
go run ./cmd/fapvet -unused-ignores ./...

echo "== fapvet -json report"
# The machine-readable report CI uploads as an artifact must parse and be
# empty of findings: "[]" exactly, modulo whitespace.
FAPVET_JSON="$(mktemp)"
trap 'rm -f "$FAPVET_JSON"' EXIT
go run ./cmd/fapvet -json ./... > "$FAPVET_JSON"
awk 'BEGIN { RS = "" } { gsub(/[ \t\n]/, "") } $0 != "[]" { print "fapvet -json report is not an empty array:"; print; exit 1 }' "$FAPVET_JSON"

echo "== go test -race ./..."
go test -race ./...

echo "== chaos-churn matrix under -race"
# The crash-recovery and membership-churn scenarios are the tests most
# sensitive to scheduling; run them explicitly under the race detector so
# a cached ./... pass cannot mask them.
go test -race -count 1 \
	-run 'TestChaosChurnContract|TestChurn|TestCrash|TestDoubleCrash|TestPartitionDepart|TestDepartRejoin|TestSupervise|TestFaultCrash' \
	./internal/experiments/ ./internal/recovery/ ./internal/transport/

echo "== gossip chaos + property battery under -race"
# The thousand-node aggregation contract: under injected faults a run
# either certifies or fails loudly, and the tree fold's compensated mean
# stays within 1 ulp for any fold shape. Both are scheduling-sensitive
# (node goroutines, fault timing), so run them uncached under the race
# detector; -short keeps the property instances at smoke size here —
# the plain ./... pass above runs the full 1000 instances.
go test -race -count 1 -short \
	-run 'TestChaosMatrix|TestProperty|TestGossipCommandWorkersByteIdentical' \
	./internal/gossip/ ./cmd/fapctl/

echo "== closed-loop serving smoke under -race"
# The fapload gate: a steady phase then a crash phase over a live 5-node
# serving cluster, fired through the hardened client path. The test itself
# asserts the contract — zero failed requests through the crash, a
# certified degraded re-plan within the convergence-lag ceiling, and no
# stale-plan errors — so a bare pass here is the acceptance bar.
go test -race -count 1 \
	-run 'TestClosedLoopSmoke|TestPhaseReportDeterministicAcrossWorkers' \
	./internal/loadgen/

echo "== catalog determinism under -race"
# The catalog batch-solves shards across sweep workers; its byte-identical
# determinism pin is exactly the kind of contract a data race would break
# silently, so run it explicitly under the race detector too.
go test -race -count 1 \
	-run 'TestCatalogDeterminism|TestCatalogExperimentDeterminism|TestCatalogLifecycle' \
	./internal/catalog/ ./internal/experiments/

echo "== coverage floors (scripts/coverage.baseline)"
# Statement coverage must not regress below the recorded per-package
# floors. The floors carry slack, so a failure here means real test
# coverage was lost, not noise.
COVER="$(go test -cover ./...)" || { echo "$COVER" >&2; exit 1; }
echo "$COVER" | awk -v base=scripts/coverage.baseline '
BEGIN {
	while ((getline line < base) > 0) {
		if (line ~ /^#/ || line == "") continue
		n = split(line, f, " "); if (n >= 2) floor[f[1]] = f[2] + 0
	}
	close(base)
}
/coverage:/ {
	pkg = $2
	pct = -1
	for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1) + 0
	if (pkg in floor && pct >= 0) {
		seen[pkg] = 1
		if (pct < floor[pkg]) {
			printf "coverage: %s at %.1f%% is below its %d%% floor\n", pkg, pct, floor[pkg]
			bad = 1
		}
	}
}
END {
	for (p in floor) if (!(p in seen)) {
		printf "coverage: no result for %s -- stale baseline entry?\n", p
		bad = 1
	}
	exit bad
}'

echo "== bench_json.awk fixture"
# The JSON emitter is plain awk; pin it against a recorded go-test
# transcript (including malformed lines and a cpu string with quotes and
# a backslash) so a matcher or escaping regression shows up as a diff,
# not as invalid JSON in CI artifacts.
AWK_OUT="$(mktemp)"
trap 'rm -f "$FAPVET_JSON" "$AWK_OUT"' EXIT
awk -v cores=8 -f scripts/bench_json.awk scripts/testdata/bench_raw.txt > "$AWK_OUT"
if ! diff -u scripts/testdata/bench_golden.json "$AWK_OUT"; then
	echo "bench_json.awk output diverged from scripts/testdata/bench_golden.json" >&2
	exit 1
fi

echo "== bench smoke (go test -bench . -benchtime 1x)"
go test -bench . -benchtime 1x -run '^$' . > /dev/null

echo "== bench.sh failure propagation"
# A malformed benchtime makes `go test -bench` fail; bench.sh must exit
# nonzero instead of writing a truncated BENCH_figures.json.
if scripts/bench.sh Fig not-a-benchtime > /dev/null 2>&1; then
	echo "bench.sh swallowed a go test failure" >&2
	exit 1
fi

echo "== BENCH_figures.json trajectory"
# The perf trajectory is committed; it must exist and must cover every
# figure benchmark currently in bench_test.go, so adding a benchmark
# without re-running scripts/bench.sh fails here instead of silently
# shipping a stale record.
if [ ! -f BENCH_figures.json ]; then
	echo "BENCH_figures.json is missing; run scripts/bench.sh and commit the result" >&2
	exit 1
fi
STALE=0
for bench in $(go test -list '^Benchmark(Fig|Catalog|Gossip)' . | grep '^Benchmark'); do
	if ! grep -q "\"name\": \"$bench" BENCH_figures.json; then
		echo "BENCH_figures.json has no entry for $bench -- stale; re-run scripts/bench.sh" >&2
		STALE=1
	fi
done
[ "$STALE" -eq 0 ] || exit 1

echo "== sweep speedup floor (Fig5 >= 1.5x, Fig6 >= 1.0x)"
# Fresh measurement, not the committed file: the chunked sweep engine
# must actually pay on this machine. On fewer than 4 cores the parallel
# variant degenerates to (nearly) the serial path and the ratio is pure
# noise, so the gate only runs where parallelism can show up.
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$CORES" -lt 4 ]; then
	echo "   skipped: $CORES core(s) < 4, speedup would be noise"
else
	FLOOR_OUT="$(mktemp)"
	trap 'rm -f "$FAPVET_JSON" "$AWK_OUT" "$FLOOR_OUT"' EXIT
	BENCH_OUT="$FLOOR_OUT" scripts/bench.sh 'Fig5AlphaSweep|Fig6Scaling' 5x > /dev/null
	awk '
	/"figure":/ {
		fig = $0; sub(/.*"figure": "/, "", fig); sub(/".*/, "", fig)
		sp = $0; sub(/.*"speedup": /, "", sp); sub(/[^0-9.].*/, "", sp)
		floor = 0
		if (fig == "BenchmarkFig5AlphaSweep") floor = 1.5
		if (fig == "BenchmarkFig6Scaling") floor = 1.0
		if (floor == 0) next
		seen[fig] = 1
		if (sp + 0 < floor) {
			printf "speedup: %s at %.3fx is below its %.1fx floor\n", fig, sp, floor
			bad = 1
		} else {
			printf "speedup: %s %.3fx (floor %.1fx)\n", fig, sp, floor
		}
	}
	END {
		if (!("BenchmarkFig5AlphaSweep" in seen) || !("BenchmarkFig6Scaling" in seen)) {
			print "speedup: bench output is missing a gated figure"
			bad = 1
		}
		exit bad
	}' "$FLOOR_OUT"
fi

echo "== catalog warm-over-cold floor (>= 3x objects/sec)"
# Fresh measurement again: warm-start re-solves must beat cold fills by at
# least 3x on the 100k-object catalog with 10% drift, or the incremental
# path has regressed into re-solving everything. ns/op per pass at a fixed
# object count makes the ns ratio the throughput ratio. On a starved box
# the sweep engine can't spread the shards and the contrast is noise, so
# like the sweep floor this gate needs 4 cores.
if [ "$CORES" -lt 4 ]; then
	echo "   skipped: $CORES core(s) < 4, contrast would be noise"
else
	WARM_OUT="$(mktemp)"
	trap 'rm -f "$FAPVET_JSON" "$AWK_OUT" "$FLOOR_OUT" "$WARM_OUT"' EXIT
	BENCH_OUT="$WARM_OUT" scripts/bench.sh 'Catalog(Cold|Warm)' 1x > /dev/null
	awk '
	/"name": "BenchmarkCatalog(Cold|Warm)"/ {
		name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
		ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[^0-9.eE+-].*/, "", ns)
		nsop[name] = ns + 0
	}
	END {
		cold = nsop["BenchmarkCatalogCold"]
		warm = nsop["BenchmarkCatalogWarm"]
		if (cold <= 0 || warm <= 0) {
			print "catalog floor: bench output is missing a catalog benchmark"
			exit 1
		}
		ratio = cold / warm
		if (ratio < 3) {
			printf "catalog floor: warm at %.3fx cold throughput is below the 3x floor\n", ratio
			exit 1
		}
		printf "catalog floor: warm %.3fx cold throughput (floor 3x)\n", ratio
	}' "$WARM_OUT"
fi

echo "ok"
