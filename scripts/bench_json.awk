# bench_json.awk — turns `go test -bench` output into the repo's
# BENCH_figures.json. Invoked by scripts/bench.sh (and by check.sh's
# fixture stage) as:
#
#	awk -v cores="$CORES" -f scripts/bench_json.awk raw-bench-output.txt
#
# A benchmark result line is
#
#	BenchmarkName/sub-P  <iterations>  <ns-per-op>  ns/op  [more pairs]
#
# and only lines of exactly that shape are stored. The matcher is one
# pattern with every field validated numerically. The previous inline
# version had two defects this file pins down (see the fixture under
# scripts/testdata/): an `a && b || c` precedence slip let an arm that
# tested `$3 == "ns/op"` fire on malformed lines and store the literal
# string "ns/op" as the ns_per_op value — invalid JSON — and the cpu
# model string was interpolated into the JSON unescaped.

function jesc(s) {
	# gsub replacements interpret backslashes a second time, hence the
	# doubling-of-the-doubling: these emit \\ and \" into the JSON.
	gsub(/\\/, "\\\\\\\\", s)
	gsub(/"/, "\\\"", s)
	return s
}
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ && NF >= 4 && $4 == "ns/op" \
	&& $2 ~ /^[0-9]+$/ \
	&& $3 ~ /^[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
	iters[n] = $2
	nsop[n] = $3
	names[n] = name
	n++
}
END {
	printf "{\n"
	printf "  \"schema\": \"filealloc-bench/1\",\n"
	printf "  \"goos\": \"%s\",\n", jesc(goos)
	printf "  \"goarch\": \"%s\",\n", jesc(goarch)
	printf "  \"cpu\": \"%s\",\n", jesc(cpu)
	printf "  \"gomaxprocs\": %d,\n", cores
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
			jesc(names[i]), iters[i], nsop[i], (i < n-1 ? "," : "")
	}
	printf "  ],\n"
	printf "  \"speedups\": [\n"
	first = 1
	for (i = 0; i < n; i++) {
		if (names[i] !~ /\/serial$/) continue
		base = names[i]
		sub(/\/serial$/, "", base)
		for (j = 0; j < n; j++) {
			if (names[j] == base "/parallel" && nsop[j] + 0 > 0) {
				if (!first) printf ",\n"
				first = 0
				printf "    {\"figure\": \"%s\", \"serial_ns\": %s, \"parallel_ns\": %s, \"speedup\": %.3f}", \
					jesc(base), nsop[i], nsop[j], nsop[i] / nsop[j]
			}
		}
	}
	if (!first) printf "\n"
	printf "  ]\n"
	printf "}\n"
}
