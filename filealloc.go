// Package filealloc is a decentralized optimal file allocation library, a
// faithful reproduction of Kurose & Simha, "A Microeconomic Approach to
// Optimal File Allocation" (ICDCS 1986). It distributes a file (or several
// files, or multiple copies) over the nodes of a network so as to minimize
// the combined communication and queueing-delay cost of accessing it,
// using a resource-directed iterative algorithm from mathematical
// economics: each node computes the marginal utility of its file fragment,
// and fragments flow from below-average to above-average marginal utility
// until all marginal utilities are equal.
//
// This package is the high-level facade. It turns a plain description of
// the network and workload into an optimal fragmentation plan:
//
//	net := filealloc.Ring(4, 1)
//	plan, err := filealloc.Plan(ctx, net, filealloc.Workload{
//		AccessRates:  []float64{0.25, 0.25, 0.25, 0.25},
//		ServiceRates: []float64{1.5},
//		DelayWeight:  1,
//	})
//	// plan.Fractions == [0.25 0.25 0.25 0.25], plan.Cost == 2.8
//
// The building blocks live in the internal packages: internal/core (the
// iterative algorithm), internal/costmodel (the utility functions),
// internal/topology (routing and access costs), internal/multicopy
// (section 7's multiple copies), internal/agent + internal/transport (the
// actual message-passing runtime), internal/baseline, internal/sim,
// internal/quantize, and internal/experiments (the paper's figures).
package filealloc

import (
	"context"
	"errors"
	"fmt"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/quantize"
	"filealloc/internal/topology"
)

// ErrBadSpec reports an invalid network or workload description.
var ErrBadSpec = errors.New("filealloc: invalid specification")

// Link is one communication channel of the network.
type Link struct {
	// From and To are node indices.
	From, To int
	// Cost is the communication cost of one access crossing the link.
	Cost float64
	// OneWay restricts the link to the From→To direction (default
	// bidirectional).
	OneWay bool
}

// Network describes the communication substrate.
type Network struct {
	// Nodes is the node count.
	Nodes int
	// Links lists the channels.
	Links []Link
	// OneWayCosts uses sp(i→j) alone as the access cost c_ij instead of
	// the default round trip sp(i→j) + sp(j→i).
	OneWayCosts bool
}

// Ring returns an n-node bidirectional ring with uniform link cost, the
// paper's evaluation topology.
func Ring(n int, linkCost float64) Network {
	net := Network{Nodes: n}
	for i := 0; i < n; i++ {
		net.Links = append(net.Links, Link{From: i, To: (i + 1) % n, Cost: linkCost})
	}
	return net
}

// FullMesh returns an n-node fully connected network with uniform link
// cost.
func FullMesh(n int, linkCost float64) Network {
	net := Network{Nodes: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			net.Links = append(net.Links, Link{From: i, To: j, Cost: linkCost})
		}
	}
	return net
}

// Star returns an n-node star with the hub at node 0.
func Star(n int, linkCost float64) Network {
	net := Network{Nodes: n}
	for i := 1; i < n; i++ {
		net.Links = append(net.Links, Link{From: 0, To: i, Cost: linkCost})
	}
	return net
}

// graph materializes the topology.
func (n Network) graph() (*topology.Graph, error) {
	if n.Nodes < 2 {
		return nil, fmt.Errorf("%w: network needs at least 2 nodes, got %d", ErrBadSpec, n.Nodes)
	}
	g := topology.New(n.Nodes)
	for _, l := range n.Links {
		var err error
		if l.OneWay {
			err = g.AddLink(l.From, l.To, l.Cost)
		} else {
			err = g.AddBidirectional(l.From, l.To, l.Cost)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return g, nil
}

// Workload describes who accesses the file and how fast nodes serve.
type Workload struct {
	// AccessRates holds λ_i, each node's file access generation rate.
	AccessRates []float64
	// ServiceRates holds μ_i (one element = homogeneous).
	ServiceRates []float64
	// DelayWeight is the paper's k, trading expected access delay
	// against communication cost.
	DelayWeight float64
}

// PlanOption tunes the solver.
type PlanOption func(*planConfig)

type planConfig struct {
	alpha    float64
	epsilon  float64
	maxIter  int
	dynamic  bool
	initial  []float64
	onRound  func(iteration int, cost float64, x []float64)
	kktCheck bool
}

// WithStepsize fixes the stepsize α (default: dynamic Theorem-2 stepsize).
func WithStepsize(alpha float64) PlanOption {
	return func(c *planConfig) {
		c.alpha = alpha
		c.dynamic = false
	}
}

// WithTolerance sets the termination threshold ε on the marginal-utility
// spread (default 1e-6).
func WithTolerance(eps float64) PlanOption {
	return func(c *planConfig) { c.epsilon = eps }
}

// WithMaxIterations bounds the solve (default 100000).
func WithMaxIterations(n int) PlanOption {
	return func(c *planConfig) { c.maxIter = n }
}

// WithInitial sets the starting allocation (default uniform). Premature
// termination still yields a feasible allocation at least as good as this
// start (the paper's monotonicity property).
func WithInitial(x []float64) PlanOption {
	return func(c *planConfig) { c.initial = append([]float64(nil), x...) }
}

// WithProgress registers a per-iteration observer.
func WithProgress(fn func(iteration int, cost float64, x []float64)) PlanOption {
	return func(c *planConfig) { c.onRound = fn }
}

// Result is a computed fragmentation plan.
type Result struct {
	// Fractions is the optimal fraction of the file per node.
	Fractions []float64
	// Cost is the expected cost of one file access under the plan
	// (communication plus DelayWeight × delay).
	Cost float64
	// CommCost and Delay split Cost into its components.
	CommCost float64
	// Delay is the expected queueing+service time of one access.
	Delay float64
	// Iterations the solver performed.
	Iterations int
	// Converged reports whether the ε-criterion fired (otherwise the
	// plan is feasible but only approximately optimal).
	Converged bool
}

// RecordCounts rounds the plan to whole records out of `records`,
// conserving the total exactly (section 8.1's largest-remainder rounding).
func (r *Result) RecordCounts(records int) ([]int, error) {
	counts, err := quantize.Records(r.Fractions, records)
	if err != nil {
		return nil, fmt.Errorf("filealloc: rounding plan to records: %w", err)
	}
	return counts, nil
}

// Plan computes the optimal fragmentation of one file over the network.
func Plan(ctx context.Context, net Network, w Workload, opts ...PlanOption) (*Result, error) {
	model, err := buildModel(net, w)
	if err != nil {
		return nil, err
	}
	cfg := planConfig{
		alpha:   0.1,
		epsilon: 1e-6,
		maxIter: 100000,
		dynamic: true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	coreOpts := []core.Option{
		core.WithAlpha(cfg.alpha),
		core.WithEpsilon(cfg.epsilon),
		core.WithMaxIterations(cfg.maxIter),
		core.WithKKTCheck(),
	}
	if cfg.dynamic {
		// Half the dynamically evaluated Theorem-2 bound: guaranteed
		// monotone, empirically near the fastest fixed stepsize.
		coreOpts = append(coreOpts, core.WithDynamicAlpha(0.5))
	}
	if cfg.onRound != nil {
		fn := cfg.onRound
		coreOpts = append(coreOpts, core.WithTrace(func(it core.Iteration) {
			fn(it.Index, -it.Utility, it.X)
		}))
	}
	alloc, err := core.NewAllocator(model, coreOpts...)
	if err != nil {
		return nil, fmt.Errorf("filealloc: configuring solver: %w", err)
	}
	init := cfg.initial
	if init == nil {
		init = make([]float64, net.Nodes)
		for i := range init {
			init[i] = 1 / float64(net.Nodes)
		}
	}
	res, err := alloc.Run(ctx, init)
	if err != nil {
		return nil, fmt.Errorf("filealloc: solving: %w", err)
	}
	cost, err := model.Cost(res.X)
	if err != nil {
		return nil, fmt.Errorf("filealloc: evaluating plan: %w", err)
	}
	comm, delay, err := model.Components(res.X)
	if err != nil {
		return nil, fmt.Errorf("filealloc: evaluating plan components: %w", err)
	}
	return &Result{
		Fractions:  res.X,
		Cost:       cost,
		CommCost:   comm,
		Delay:      delay,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}, nil
}

// buildModel assembles the equation-2 objective from the specs.
func buildModel(net Network, w Workload) (*costmodel.SingleFile, error) {
	g, err := net.graph()
	if err != nil {
		return nil, err
	}
	if len(w.AccessRates) != net.Nodes {
		return nil, fmt.Errorf("%w: %d access rates for %d nodes", ErrBadSpec, len(w.AccessRates), net.Nodes)
	}
	conv := topology.RoundTrip
	if net.OneWayCosts {
		conv = topology.OneWay
	}
	access, err := topology.AccessCosts(g, w.AccessRates, conv)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	var lambda float64
	for _, r := range w.AccessRates {
		lambda += r
	}
	model, err := costmodel.NewSingleFile(access, w.ServiceRates, lambda, w.DelayWeight)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return model, nil
}

// Evaluate returns the expected per-access cost of an arbitrary feasible
// allocation on the given system, without optimizing. Useful for comparing
// hand-rolled placements against Plan's output.
func Evaluate(net Network, w Workload, fractions []float64) (float64, error) {
	model, err := buildModel(net, w)
	if err != nil {
		return 0, err
	}
	cost, err := model.Cost(fractions)
	if err != nil {
		return 0, fmt.Errorf("filealloc: evaluating allocation: %w", err)
	}
	return cost, nil
}
