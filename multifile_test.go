package filealloc

import (
	"context"
	"errors"
	"math"
	"testing"
)

func twoFileWorkload() MultiWorkload {
	return MultiWorkload{
		Files: []FileSpec{
			{Name: "hot", AccessRates: []float64{0.3, 0.3, 0.3, 0.3}},
			{Name: "cold", AccessRates: []float64{0.05, 0.05, 0.05, 0.05}},
		},
		ServiceRates: []float64{2.5},
		DelayWeight:  1,
	}
}

func TestPlanFilesConservesEachFile(t *testing.T) {
	res, err := PlanFiles(context.Background(), Ring(4, 1), twoFileWorkload())
	if err != nil {
		t.Fatalf("PlanFiles: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge after %d iterations", res.Iterations)
	}
	if len(res.Files) != 2 || res.Files[0].Name != "hot" || res.Files[1].Name != "cold" {
		t.Fatalf("placements = %+v", res.Files)
	}
	for _, fp := range res.Files {
		var sum float64
		for i, v := range fp.Fractions {
			if v < 0 {
				t.Errorf("%s: fraction[%d] = %g negative", fp.Name, i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %g", fp.Name, sum)
		}
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %g", res.Cost)
	}
}

func TestPlanFilesSymmetricOptimum(t *testing.T) {
	// Symmetric ring + symmetric rates: the optimum is a continuum of
	// allocations with balanced per-node loads (cold fragments can trade
	// places with hot ones), all at the cost of the fully uniform
	// placement. From a skewed start the solver must land somewhere on
	// that continuum.
	w := twoFileWorkload()
	res, err := PlanFiles(context.Background(), Ring(4, 1), w,
		WithInitial([]float64{1, 0, 0, 0 /* hot */, 0, 0, 0, 1 /* cold */}),
		WithStepsize(0.2),
	)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := PlanFiles(context.Background(), Ring(4, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-uniform.Cost) > 1e-5 {
		t.Errorf("skewed-start cost %g vs uniform optimum %g", res.Cost, uniform.Cost)
	}
	// Per-node loads balanced: L_i = Σ_f λ^f·x_i^f equal across nodes.
	hotRate, coldRate := 1.2, 0.2
	loads := make([]float64, 4)
	for i := 0; i < 4; i++ {
		loads[i] = hotRate*res.Files[0].Fractions[i] + coldRate*res.Files[1].Fractions[i]
	}
	for i := 1; i < 4; i++ {
		if math.Abs(loads[i]-loads[0]) > 1e-3 {
			t.Errorf("loads not balanced: %v", loads)
			break
		}
	}
}

func TestPlanFilesValidation(t *testing.T) {
	tests := []struct {
		name string
		net  Network
		w    MultiWorkload
	}{
		{"no files", Ring(4, 1), MultiWorkload{ServiceRates: []float64{2}, DelayWeight: 1}},
		{"rate count", Ring(4, 1), MultiWorkload{
			Files:        []FileSpec{{Name: "f", AccessRates: []float64{1}}},
			ServiceRates: []float64{2},
			DelayWeight:  1,
		}},
		{"bad network", Network{Nodes: 1}, twoFileWorkload()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PlanFiles(context.Background(), tt.net, tt.w); !errors.Is(err, ErrBadSpec) {
				t.Errorf("error = %v, want ErrBadSpec", err)
			}
		})
	}
}
