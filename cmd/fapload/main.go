// Command fapload fires a phased load script at a live in-process
// fapnode serving cluster and emits the deterministic phase report.
//
// Usage:
//
//	fapload [-spec file.json] [-workers N] [-seed N] [-json out.json]
//	        [-csv out.csv] [-hedge] [-v]
//
// With no -spec the canonical steady → shift → burst → crash script over
// five nodes runs. The report (per-phase p50/p95/p99 latency, error
// classes, re-plan counts, and post-shift convergence lag in ticks) is a
// pure function of (spec, seed): the engine drives a virtual tick clock,
// every recorded latency is model-derived, and the worker count never
// changes a byte of output. -hedge enables hedged second requests with a
// p99-derived delay; hedging races wall-clock timers, so it trades the
// determinism guarantee for tail-latency coverage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/loadgen"
	"filealloc/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fapload:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapload", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON load spec (default: the built-in steady-shift-burst-crash script)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "request-firing concurrency; the report is identical at any setting")
	seed := fs.Int64("seed", 0, "override the spec's seed (0 keeps it)")
	jsonOut := fs.String("json", "", "also write the JSON report to this file")
	csvOut := fs.String("csv", "", "also write the CSV report to this file")
	hedge := fs.Bool("hedge", false, "hedge tail requests with a p99-derived delay (trades determinism for tail latency)")
	timeout := fs.Duration("timeout", 2*time.Minute, "abort the whole run after this wall-clock budget")
	verbose := fs.Bool("v", false, "log cluster lifecycle events to stderr")
	metricsOut := fs.String("metrics-out", "",
		"write the run's metrics-registry snapshot as JSON to this file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	spec := loadgen.DefaultSpec()
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("reading spec: %w", err)
		}
		spec, err = loadgen.ParseSpec(b)
		if err != nil {
			return err
		}
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	var obs agent.Observer
	if *verbose {
		obs = agent.NewLogObserver(os.Stderr)
	}
	reg := metrics.New()

	// Real time exists only at this CLI edge: the wall-clock budget and
	// the per-request deadlines. Everything in the report derives from
	// the virtual tick clock.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	sc, err := newClusterForSpec(ctx, spec, *hedge, reg, obs)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sc.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "fapload: closing cluster:", cerr)
		}
	}()

	rep, err := loadgen.Run(ctx, loadgen.Config{Spec: spec, Target: sc, Workers: *workers, Registry: reg})
	if err != nil {
		return err
	}

	j, err := rep.JSON()
	if err != nil {
		return err
	}
	if _, err := w.Write(j); err != nil {
		return err
	}
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, j, 0o644); err != nil {
			return fmt.Errorf("writing JSON report: %w", err)
		}
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, rep.CSV(), 0o644); err != nil {
			return fmt.Errorf("writing CSV report: %w", err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetricsSnapshot(reg, *metricsOut, w); err != nil {
			return err
		}
	}
	return nil
}

// writeMetricsSnapshot dumps the registry as indented snapshot JSON to
// path ("-": the report writer).
func writeMetricsSnapshot(reg *metrics.Registry, path string, w io.Writer) error {
	b, err := metrics.EncodeJSON(reg.Snapshot())
	if err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if path == "-" {
		_, err := w.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}

// newClusterForSpec sizes a live serving cluster for the spec: per-node
// service rate 2.2x the peak tick rate divided across nodes, so total
// capacity comfortably exceeds demand even with a node crashed.
func newClusterForSpec(ctx context.Context, spec loadgen.Spec, hedge bool, reg *metrics.Registry, obs agent.Observer) (*agent.ServeCluster, error) {
	peak := 0.0
	for _, p := range spec.Phases {
		if p.RPS > peak {
			peak = p.RPS
		}
	}
	mu := make([]float64, spec.Nodes)
	rates := make([]float64, spec.Nodes)
	for i := range mu {
		mu[i] = 2.2 * peak / float64(spec.Nodes)
		rates[i] = spec.Phases[0].RPS / float64(spec.Nodes)
	}
	cfg := agent.ServeClusterConfig{
		N:              spec.Nodes,
		Mu:             mu,
		K:              1,
		InitRates:      rates,
		RequestTimeout: 2 * time.Second,
		Retries:        2,
		DownAfter:      2,
		Seed:           spec.Seed,
		Registry:       reg,
		Observer:       obs,
	}
	if hedge {
		cfg.HedgeDelay = 5 * time.Millisecond
		cfg.HedgeFromP99 = true
	}
	sc, err := agent.NewServeCluster(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return sc, nil
}
