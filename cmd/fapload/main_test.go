package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"filealloc/internal/loadgen"
)

const tinySpec = `{
	"name": "tiny", "seed": 5, "nodes": 3,
	"phases": [
		{"name": "steady", "kind": "steady", "ticks": 3, "rps": 12},
		{"name": "crash", "kind": "crash", "ticks": 4, "rps": 12, "kill": [2]}
	]
}`

func TestRunDefaultSpecSmallWorkload(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "report.csv")

	var out bytes.Buffer
	err := run([]string{"-spec", specPath, "-workers", "2", "-json", jsonPath, "-csv", csvPath}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.Bytes())
	}
	if rep.Spec != "tiny" || rep.Seed != 5 || len(rep.Phases) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Totals.Requests != 3*12+4*12 {
		t.Fatalf("total requests = %d, want 84", rep.Totals.Requests)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("run failed %d requests", rep.Totals.Errors)
	}
	if rep.Phases[1].AliveEnd != 2 {
		t.Fatalf("crash phase alive = %d, want 2", rep.Phases[1].AliveEnd)
	}

	fileJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileJSON, out.Bytes()) {
		t.Fatal("-json file differs from stdout report")
	}
	fileCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(fileCSV)), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 phases:\n%s", len(lines), fileCSV)
	}
}

func TestRunSeedOverrideIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := run([]string{"-spec", specPath, "-seed", "9", "-workers", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-seed", "9", "-workers", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("seed-pinned reports differ across worker counts:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}
	if !strings.Contains(a.String(), `"seed": 9`) {
		t.Fatal("-seed override not reflected in the report")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workers", "0"}, &out); err == nil {
		t.Fatal("accepted -workers 0")
	}
	if err := run([]string{"-spec", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("accepted a missing spec file")
	}
	if err := run([]string{"extra"}, &out); err == nil {
		t.Fatal("accepted positional arguments")
	}
}
