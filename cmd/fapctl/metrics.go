package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// promFamily is one metric family reassembled from a Prometheus text
// scrape: its TYPE/HELP header plus every sample line that belongs to it
// (histogram families own their _bucket/_sum/_count series).
type promFamily struct {
	name    string
	kind    string
	help    string
	samples []string
}

// runMetrics implements `fapctl metrics <url>`: scrape a fapnode's
// /metrics endpoint (Prometheus text format) and pretty-print it grouped
// by family, counters and gauges first, histograms last.
func runMetrics(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapctl metrics", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fapctl metrics [-timeout d] <url> (e.g. http://127.0.0.1:9090/metrics)")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("scraping %s: %w", fs.Arg(0), err)
	}
	defer resp.Body.Close() //nolint:errcheck // read-only response
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraping %s: status %s", fs.Arg(0), resp.Status)
	}
	fams, err := parsePromText(resp.Body)
	if err != nil {
		return err
	}
	return printFamilies(w, fams)
}

// parsePromText groups the sample lines of a Prometheus text exposition
// under their families, in exposition order. Unknown lines are an error:
// a scrape that does not parse should fail loudly, not print garbage.
func parsePromText(r io.Reader) ([]*promFamily, error) {
	var (
		ordered []*promFamily
		byName  = make(map[string]*promFamily)
	)
	family := func(name string) *promFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &promFamily{name: name}
		byName[name] = f
		ordered = append(ordered, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			family(name).help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, _ := strings.Cut(rest, " ")
			family(name).kind = kind
		case strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			// Histogram series carry the family name plus a suffix.
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if t := strings.TrimSuffix(name, suffix); t != name {
					if _, ok := byName[t]; ok {
						base = t
						break
					}
				}
			}
			if _, ok := byName[base]; !ok {
				return nil, fmt.Errorf("sample %q has no # TYPE header", line)
			}
			f := byName[base]
			f.samples = append(f.samples, strings.TrimPrefix(line, base))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading scrape: %w", err)
	}
	return ordered, nil
}

// printFamilies renders the scrape grouped by family with the samples
// indented under a "name (kind) — help" header, families sorted by name
// within each kind so repeated scrapes diff cleanly.
func printFamilies(w io.Writer, fams []*promFamily) error {
	sort.SliceStable(fams, func(i, j int) bool {
		if fams[i].kind != fams[j].kind {
			return kindRank(fams[i].kind) < kindRank(fams[j].kind)
		}
		return fams[i].name < fams[j].name
	})
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "%s (%s) — %s\n", f.name, f.kind, f.help); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "  %s\n", strings.TrimSpace(s)); err != nil {
				return err
			}
		}
	}
	return nil
}

func kindRank(kind string) int {
	switch kind {
	case "counter":
		return 0
	case "gauge":
		return 1
	case "histogram":
		return 2
	}
	return 3
}
