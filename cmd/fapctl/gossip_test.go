package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// elapsedRe strips the only nondeterministic token in the gossip report
// so runs can be compared byte for byte.
var elapsedRe = regexp.MustCompile(`elapsed=[^ \n]+`)

func TestGossipCommandBothModes(t *testing.T) {
	var b strings.Builder
	err := run([]string{"gossip", "-n", "16", "-mode", "both",
		"-alpha", "0.3", "-ticks", "40"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"n=16 topology=random",
		"wire=binary",
		"tree: rounds=",
		"gossip: rounds=",
		"message bill",
		"measured", // n=16 ≤ the measurement limit: broadcast row is real
		"fewer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "certified=true") != 2 {
		t.Errorf("want both runs certified:\n%s", out)
	}
}

func TestGossipCommandWorkersByteIdentical(t *testing.T) {
	dir := t.TempDir()
	outputs := make([]string, 2)
	metrics := make([][]byte, 2)
	for i, workers := range []string{"1", "7"} {
		mf := filepath.Join(dir, "m"+workers+".json")
		var b strings.Builder
		err := run([]string{"gossip", "-n", "32", "-alpha", "0.3",
			"-workers", workers, "-metrics-out", mf}, &b)
		if err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, b.String())
		}
		outputs[i] = elapsedRe.ReplaceAllString(b.String(), "elapsed=X")
		raw, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		metrics[i] = raw
	}
	if outputs[0] != outputs[1] {
		t.Errorf("report differs across -workers:\n--- workers=1\n%s\n--- workers=7\n%s", outputs[0], outputs[1])
	}
	if string(metrics[0]) != string(metrics[1]) {
		t.Errorf("metrics snapshot differs across -workers")
	}
}

func TestGossipCommandChurn(t *testing.T) {
	var b strings.Builder
	err := run([]string{"gossip", "-n", "16", "-alpha", "0.3", "-churn", "2",
		"-round-timeout", "1s"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "alive=14/16") {
		t.Errorf("want 2 nodes dead:\n%s", out)
	}
	if !strings.Contains(out, "certified=true") {
		t.Errorf("survivors failed to certify:\n%s", out)
	}
	if !strings.Contains(out, "analytic") {
		t.Errorf("churn runs must use the analytic broadcast row:\n%s", out)
	}
}

func TestGossipCommandJSONWire(t *testing.T) {
	var b strings.Builder
	err := run([]string{"gossip", "-n", "8", "-alpha", "0.3", "-json-wire"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "wire=json") {
		t.Errorf("output wrong:\n%s", b.String())
	}
}

func TestGossipCommandRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"gossip", "-mode", "telepathy"},
		{"gossip", "-topology", "klein-bottle"},
		{"gossip", "-n", "4", "-churn", "4"},
		{"gossip", "-workers", "0"},
		{"gossip", "-round-timeout", "-1s"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
