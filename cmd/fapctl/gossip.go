package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/gossip"
	"filealloc/internal/metrics"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// broadcastMeasureLimit caps the cluster size at which the broadcast
// reference is actually run; above it the bill row is the analytic
// N·(N−1), which is exact for the all-pairs exchange anyway.
const broadcastMeasureLimit = 64

// runGossip implements `fapctl gossip`: spin up an in-process cluster of
// n nodes, let them agree on the allocation by hierarchical (tree) or
// epidemic (push-sum) aggregation, certify the result against the KKT
// conditions, and print the message bill next to what all-pairs
// broadcast would have cost.
func runGossip(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapctl gossip", flag.ContinueOnError)
	n := fs.Int("n", 1000, "cluster size")
	topo := fs.String("topology", "random", "network topology: random | ring | mesh | star")
	extraEdges := fs.Int("extra-edges", -1, "extra random edges beyond the spanning tree (random topology; -1 picks 2n)")
	linkCost := fs.Float64("linkcost", 1, "uniform link cost (ring/mesh/star)")
	lambda := fs.Float64("lambda", 1, "total access rate")
	mu := fs.Float64("mu", 1.5, "per-node service rate μ")
	k := fs.Float64("k", 1, "delay scaling factor")
	alpha := fs.Float64("alpha", 0.1, "stepsize α")
	epsilon := fs.Float64("epsilon", 1e-3, "termination threshold ε (tree and broadcast)")
	gossipEpsilon := fs.Float64("gossip-epsilon", 5e-3,
		"termination threshold for push-sum runs, whose averages carry mixing error the tree scheme does not have")
	kktTol := fs.Float64("kkt-tol", 0, "certification tolerance; 0 picks the mode's default")
	ticks := fs.Int("ticks", 0, "push-sum mixing ticks per round; 0 derives from the topology depth")
	seed := fs.Int64("seed", 42, "topology and exchange-schedule seed")
	mode := fs.String("mode", "tree", "aggregation scheme: tree | gossip | both")
	churn := fs.Int("churn", 0, "crash this many nodes mid-protocol (highest ids first)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"access-cost precompute concurrency; results are byte-identical for any value")
	jsonWire := fs.Bool("json-wire", false, "use the JSON codec on the wire instead of binary frames")
	maxRounds := fs.Int("max-rounds", 20000, "total round budget across churn epochs")
	roundTimeout := fs.Duration("round-timeout", 10*time.Second,
		"per-round aggregation deadline; hitting it triggers the churn/retry path")
	metricsOut := fs.String("metrics-out", "",
		"write the run's metrics-registry snapshot as JSON to this file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if *roundTimeout <= 0 {
		return fmt.Errorf("-round-timeout must be positive, got %s", *roundTimeout)
	}
	var modes []gossip.Mode
	switch *mode {
	case "tree":
		modes = []gossip.Mode{gossip.ModeTree}
	case "gossip":
		modes = []gossip.Mode{gossip.ModeGossip}
	case "both":
		modes = []gossip.Mode{gossip.ModeTree, gossip.ModeGossip}
	default:
		return fmt.Errorf("unknown -mode %q (want tree | gossip | both)", *mode)
	}
	if *churn >= *n {
		return fmt.Errorf("-churn %d would kill the whole %d-node cluster", *churn, *n)
	}

	g, err := buildGossipGraph(*topo, *n, *extraEdges, *linkCost, *seed)
	if err != nil {
		return err
	}
	rates := topology.UniformRates(*n, *lambda)
	access, err := parallelAccessCosts(g, rates, *workers)
	if err != nil {
		return err
	}
	models := make([]agent.LocalModel, *n)
	for i := range models {
		models[i] = agent.LocalModel{
			AccessCost:  access[i],
			ServiceRate: *mu,
			Lambda:      *lambda,
			K:           *k,
		}
	}
	init := make([]float64, *n)
	for i := range init {
		init[i] = 1 / float64(*n)
	}
	var faults *transport.FaultConfig
	if *churn > 0 {
		rules := make([]transport.FaultRule, *churn)
		for i := range rules {
			// Kill the highest ids so the tree root (lowest alive id)
			// survives unless every other node is gone; use -churn with a
			// low-id victim count of n-1 to watch the root die too.
			rules[i] = transport.FaultRule{
				Kind:      transport.FaultCrash,
				Nodes:     []int{*n - 1 - i},
				FromRound: 3, ToRound: 4,
			}
		}
		faults = &transport.FaultConfig{Seed: *seed, Rules: rules}
	}

	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.New()
	}

	fmt.Fprintf(w, "gossip cluster: n=%d topology=%s seed=%d alpha=%g epsilon=%g wire=%s churn=%d\n",
		*n, *topo, *seed, *alpha, *epsilon, wireName(*jsonWire), *churn)

	type billRow struct {
		scheme   string
		rounds   int
		messages float64 // per round
		bytes    float64 // per round
		note     string
	}
	rows := []billRow{}
	var failed []string
	broadcast := float64(gossip.BroadcastMessages(*n))
	if *n <= broadcastMeasureLimit && *churn == 0 {
		ref, err := agent.RunCluster(context.Background(), agent.ClusterConfig{
			Models: models,
			Init:   init,
			Alpha:  *alpha, Epsilon: *epsilon, MaxRounds: *maxRounds,
			Mode: agent.Broadcast,
		})
		if err != nil {
			return fmt.Errorf("broadcast reference: %w", err)
		}
		perRound := float64(ref.Messages) / float64(maxInt(ref.Rounds, 1))
		rows = append(rows, billRow{"broadcast", ref.Rounds, perRound, 0, "measured"})
	} else {
		rows = append(rows, billRow{"broadcast", 0, broadcast, 0, "analytic N(N-1)"})
	}

	for _, m := range modes {
		eps := *epsilon
		if m == gossip.ModeGossip {
			eps = *gossipEpsilon
		}
		start := time.Now()
		res, err := gossip.RunCluster(context.Background(), gossip.ClusterConfig{
			Graph:        g,
			Models:       models,
			Init:         init,
			Alpha:        *alpha,
			Epsilon:      eps,
			Mode:         m,
			Seed:         *seed,
			Ticks:        *ticks,
			KKTTol:       *kktTol,
			JSONWire:     *jsonWire,
			Faults:       faults,
			MaxRounds:    *maxRounds,
			RoundTimeout: *roundTimeout,
			Metrics:      reg,
		})
		if err != nil {
			return fmt.Errorf("%s run: %w", m, err)
		}
		elapsed := time.Since(start)
		alive := 0
		var sum float64
		for i, ok := range res.Alive {
			if ok {
				alive++
			}
			sum += res.X[i]
		}
		fmt.Fprintf(w, "%s: rounds=%d epochs=%d converged=%v certified=%v q=%.6f alive=%d/%d sum=%.6f elapsed=%s\n",
			m, res.Rounds, res.Epochs, res.Converged, res.Certified, res.Q, alive, *n,
			sum, elapsed.Round(time.Millisecond))
		rows = append(rows, billRow{m.String(), res.Rounds, res.Bill.MessagesPerRound(), res.Bill.BytesPerRound(), ""})
		if !res.Converged || !res.Certified {
			fmt.Fprintf(w, "warning: %s run did not reach a certified fixed point\n", m)
			failed = append(failed, m.String())
		}
	}

	fmt.Fprintf(w, "message bill (per round, broadcast = %s messages):\n", formatCount(broadcast))
	fmt.Fprintf(w, "  %-10s %10s %12s %12s %12s  %s\n", "scheme", "rounds", "messages", "bytes", "vs broadcast", "")
	for _, r := range rows {
		factor := "1.0x"
		if r.messages > 0 && r.scheme != "broadcast" {
			factor = fmt.Sprintf("%.1fx fewer", broadcast/r.messages)
		}
		byteCol := "-"
		if r.bytes > 0 {
			byteCol = formatCount(r.bytes)
		}
		roundCol := "-"
		if r.rounds > 0 {
			roundCol = fmt.Sprintf("%d", r.rounds)
		}
		fmt.Fprintf(w, "  %-10s %10s %12s %12s %12s  %s\n",
			r.scheme, roundCol, formatCount(r.messages), byteCol, factor, r.note)
	}
	if err := writeGossipMetrics(reg, *metricsOut, w); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("uncertified run: %s", strings.Join(failed, ", "))
	}
	return nil
}

func wireName(json bool) string {
	if json {
		return "json"
	}
	return "binary"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// formatCount renders a per-round quantity compactly and stably.
func formatCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// buildGossipGraph constructs the run topology. Random graphs get 2n
// extra edges by default: enough shortcuts to keep the spanning tree
// shallow at n=1000 without approaching mesh densities.
func buildGossipGraph(topo string, n, extraEdges int, linkCost float64, seed int64) (*topology.Graph, error) {
	switch topo {
	case "random":
		if extraEdges < 0 {
			extraEdges = 2 * n
		}
		return topology.RandomConnected(n, extraEdges, 0.1, 1, seed)
	case "ring":
		return topology.Ring(n, linkCost)
	case "mesh":
		return topology.FullMesh(n, linkCost)
	case "star":
		return topology.Star(n, linkCost)
	default:
		return nil, fmt.Errorf("unknown -topology %q (want random | ring | mesh | star)", topo)
	}
}

// parallelAccessCosts computes topology.AccessCosts with the per-source
// shortest-path sweeps spread over a worker pool. The reduction over
// sources runs in ascending order on precomputed rows, so the result is
// byte-identical to the serial computation for any worker count.
func parallelAccessCosts(g *topology.Graph, rates []float64, workers int) ([]float64, error) {
	n := g.NumNodes()
	if len(rates) != n {
		return nil, fmt.Errorf("%d rates for %d nodes", len(rates), n)
	}
	var total float64
	for j, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("rate[%d] = %v is negative", j, r)
		}
		total += r
	}
	if total <= 0 {
		return nil, fmt.Errorf("total rate must be positive")
	}
	if workers > n {
		workers = n
	}
	dist := make([][]float64, n)
	errs := make([]error, n)
	var next int64
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		next++
		return int(next - 1)
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				src := claim()
				if src < 0 {
					return
				}
				dist[src], errs[src] = g.ShortestFrom(src)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Deterministic reduction: C_i = Σ_j (λ_j/λ)·(sp(j,i) + sp(i,j)),
	// folded in ascending j exactly like topology.AccessCosts.
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sum += rates[j] / total * (dist[j][i] + dist[i][j])
		}
		out[i] = sum
	}
	return out, nil
}

// writeGossipMetrics dumps the registry snapshot like fapsim does; a nil
// registry (no -metrics-out) is a no-op.
func writeGossipMetrics(reg *metrics.Registry, path string, w io.Writer) error {
	if reg == nil {
		return nil
	}
	b, err := metrics.EncodeJSON(reg.Snapshot())
	if err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if path == "-" {
		_, err := w.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}
