package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"filealloc/internal/metrics"
)

// scrapeRegistry builds a registry exercising all three metric kinds.
func scrapeRegistry() *metrics.Registry {
	reg := metrics.New()
	reg.Counter("fap_agent_rounds_started_total", "rounds started", metrics.L("node", "0")).Add(12)
	reg.Counter("fap_agent_rounds_started_total", "rounds started", metrics.L("node", "1")).Add(12)
	reg.Gauge("fap_agent_spread", "max-min marginal utility spread", metrics.L("node", "0")).Set(0.125)
	h := reg.Histogram("fap_transport_sent_bytes", "payload sizes", []int64{64, 256}, metrics.L("node", "0"))
	h.Observe(100)
	h.Observe(300)
	return reg
}

// TestRunMetricsScrape drives `fapctl metrics` against a live endpoint
// and checks the pretty-printed grouping: every family appears once with
// its kind and help, counters before gauges before histograms, and the
// histogram's bucket/sum/count series indented beneath it.
func TestRunMetricsScrape(t *testing.T) {
	srv := httptest.NewServer(metrics.Handler(scrapeRegistry()))
	defer srv.Close()

	var b strings.Builder
	if err := run([]string{"metrics", srv.URL}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fap_agent_rounds_started_total (counter) — rounds started",
		`{node="0"} 12`,
		`{node="1"} 12`,
		"fap_agent_spread (gauge) — max-min marginal utility spread",
		"fap_transport_sent_bytes (histogram) — payload sizes",
		`_bucket{node="0",le="+Inf"} 2`,
		"_count{node=\"0\"} 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if ci, hi := strings.Index(out, "(counter)"), strings.Index(out, "(histogram)"); ci > hi {
		t.Errorf("counters should print before histograms:\n%s", out)
	}
}

func TestRunMetricsErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"metrics"}, &b); err == nil {
		t.Error("missing URL accepted")
	}
	if err := run([]string{"metrics", "-timeout", "100ms", "http://127.0.0.1:1/metrics"}, &b); err == nil {
		t.Error("unreachable endpoint accepted")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if err := run([]string{"metrics", srv.URL}, &b); err == nil {
		t.Error("non-200 scrape accepted")
	}
}

func TestParsePromTextRejectsHeaderless(t *testing.T) {
	if _, err := parsePromText(strings.NewReader("orphan_metric 3\n")); err == nil {
		t.Error("sample without # TYPE header accepted")
	}
}
