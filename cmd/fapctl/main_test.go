package main

import (
	"strings"
	"testing"
)

func TestRunMemoryBroadcast(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "4"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"transport=memory",
		"converged=true",
		"max |distributed − centralized| = 0",
		"cost=2.800000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTCPCoordinator(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tcp", "-mode", "coordinator"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "transport=tcp") || !strings.Contains(out, "mode=coordinator") {
		t.Errorf("output wrong:\n%s", out)
	}
	if !strings.Contains(out, "max |distributed − centralized| = 0") {
		t.Errorf("TCP cluster diverged from central solver:\n%s", out)
	}
}

func TestRunMeshTopology(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "6", "-topology", "mesh"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "topology=mesh") {
		t.Errorf("output wrong:\n%s", b.String())
	}
}

func TestRunValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "gossip"}, &b); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-topology", "torus"}, &b); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-n", "1"}, &b); err == nil {
		t.Error("single-node cluster accepted")
	}
}
