package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"filealloc/internal/catalog"
	"filealloc/internal/recovery"
)

func TestRunMemoryBroadcast(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "4"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"transport=memory",
		"converged=true",
		"max |distributed − centralized| = 0",
		"cost=2.800000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTCPCoordinator(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tcp", "-mode", "coordinator"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "transport=tcp") || !strings.Contains(out, "mode=coordinator") {
		t.Errorf("output wrong:\n%s", out)
	}
	if !strings.Contains(out, "max |distributed − centralized| = 0") {
		t.Errorf("TCP cluster diverged from central solver:\n%s", out)
	}
}

func TestRunMeshTopology(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "6", "-topology", "mesh"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "topology=mesh") {
		t.Errorf("output wrong:\n%s", b.String())
	}
}

// writeTestCheckpoints populates a store with two rounds and returns its
// directory.
func writeTestCheckpoints(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	store, err := recovery.NewStore(dir, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.4, 0.3, 0.3, 0}
	alive := []bool{true, true, true, false}
	for round := 3; round <= 4; round++ {
		if err := store.SaveRound(round, xs[1], xs, alive, 0x7); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCheckpointSubcommandInspectsFileAndDir(t *testing.T) {
	dir := writeTestCheckpoints(t)

	var b strings.Builder
	if err := run([]string{"checkpoint", dir}, &b); err != nil {
		t.Fatalf("checkpoint dir: %v", err)
	}
	var rep checkpointReport
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("bad JSON %q: %v", b.String(), err)
	}
	if rep.Round != 4 || rep.Node != 1 || rep.Peers != 4 || rep.X != 0.3 {
		t.Errorf("report = %+v, want round 4 of node 1/4 with x=0.3", rep)
	}
	if rep.SumX != 1 || len(rep.Support) != 3 || rep.Planned != "0x7" {
		t.Errorf("report = %+v, want Σx=1, 3-node support, planned 0x7", rep)
	}

	// A single file is inspected directly.
	b.Reset()
	if err := run([]string{"checkpoint", rep.File}, &b); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if !strings.Contains(b.String(), `"round": 4`) {
		t.Errorf("file output wrong:\n%s", b.String())
	}
}

func TestCheckpointSubcommandSkipsCorruptNewest(t *testing.T) {
	dir := writeTestCheckpoints(t)
	// Corrupt the newest file: the subcommand must fall back to round 3
	// and report the skip.
	newest := filepath.Join(dir, "ckpt-000000004.json")
	if err := os.WriteFile(newest, []byte("{ torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"checkpoint", dir}, &b); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	var rep checkpointReport
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Round != 3 || rep.SkippedInvalid != 1 {
		t.Errorf("report = %+v, want round 3 with 1 skipped file", rep)
	}
}

func TestCheckpointSubcommandFailsLoudly(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"checkpoint"}, &b); err == nil {
		t.Error("missing path accepted")
	}
	if err := run([]string{"checkpoint", filepath.Join(t.TempDir(), "absent")}, &b); err == nil {
		t.Error("nonexistent path accepted")
	}
	if err := run([]string{"checkpoint", t.TempDir()}, &b); err == nil {
		t.Error("empty directory accepted")
	}
	// A directory whose every checkpoint is corrupt is an error, not a
	// silent empty report.
	dir := writeTestCheckpoints(t)
	for _, name := range []string{"ckpt-000000003.json", "ckpt-000000004.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"checkpoint", dir}, &b); err == nil {
		t.Error("all-corrupt directory accepted")
	}
	// A corrupt single file is an error too.
	bad := filepath.Join(t.TempDir(), "ckpt-000000001.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"checkpoint", bad}, &b); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestRunValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "gossip"}, &b); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-topology", "torus"}, &b); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-n", "1"}, &b); err == nil {
		t.Error("single-node cluster accepted")
	}
}

// writeTestSnapshot cold-solves a small catalog and writes its snapshot,
// returning the file path and the snapshot for cross-checking.
func writeTestSnapshot(t *testing.T) (string, catalog.Snapshot) {
	t.Helper()
	cat, err := catalog.New(catalog.Config{Objects: 24, Nodes: 5, ShardSize: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.SolveCold(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := cat.Snapshot()
	raw, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, snap
}

func TestPlacementsSubcommandSummaryAndQuery(t *testing.T) {
	path, snap := writeTestSnapshot(t)

	// Bare snapshot: one-line summary.
	var b strings.Builder
	if err := run([]string{"placements", path}, &b); err != nil {
		t.Fatalf("placements summary: %v", err)
	}
	if !strings.Contains(b.String(), "24 objects × 5 nodes") {
		t.Errorf("summary wrong:\n%s", b.String())
	}

	// Object query: a table sorted largest share first.
	b.Reset()
	if err := run([]string{"placements", path, "0", "17"}, &b); err != nil {
		t.Fatalf("placements query: %v", err)
	}
	out := b.String()
	for _, want := range []string{"object 0:", "object 17:", "node", "share", "demand"} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}

	// JSON query round-trips and matches the library answer.
	b.Reset()
	if err := run([]string{"placements", "-json", path, "3"}, &b); err != nil {
		t.Fatalf("placements -json: %v", err)
	}
	var rep []struct {
		Object     int                 `json:"object"`
		Placements []catalog.Placement `json:"placements"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("bad JSON %q: %v", b.String(), err)
	}
	want, err := snap.Placements(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 1 || rep[0].Object != 3 || !reflect.DeepEqual(rep[0].Placements, want) {
		t.Errorf("JSON report = %+v, want object 3 with %+v", rep, want)
	}
}

func TestPlacementsSubcommandFailsLoudly(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	var b strings.Builder
	if err := run([]string{"placements"}, &b); err == nil {
		t.Error("missing snapshot path accepted")
	}
	if err := run([]string{"placements", filepath.Join(t.TempDir(), "absent.json")}, &b); err == nil {
		t.Error("nonexistent snapshot accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"placements", bad}, &b); err == nil {
		t.Error("wrong-schema snapshot accepted")
	}
	if err := run([]string{"placements", path, "seven"}, &b); err == nil {
		t.Error("non-integer object id accepted")
	}
	if err := run([]string{"placements", path, "24"}, &b); err == nil {
		t.Error("out-of-range object id accepted")
	}
}
