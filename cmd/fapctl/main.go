// Command fapctl drives a complete allocation run from one terminal: it
// spins up an in-process cluster of protocol agents (over an in-memory
// network by default, or real TCP loopback sockets with -tcp), lets them
// negotiate the allocation, and prints the outcome next to the
// centralized solver's for comparison.
//
//	fapctl -n 8 -topology mesh -alpha 0.5
//	fapctl -tcp -mode coordinator
//
// The checkpoint subcommand inspects crash-recovery state written by
// fapnode -checkpoint-dir: it loads a checkpoint file (or the newest valid
// one in a directory), validates its checksum and shape, and prints it as
// JSON — exiting non-zero when nothing valid is found.
//
//	fapctl checkpoint /var/lib/fapnode/ckpt-000000012.json
//	fapctl checkpoint /var/lib/fapnode
//
// The metrics subcommand scrapes a fapnode observability endpoint
// (started with -metrics-addr) and pretty-prints the Prometheus text
// exposition grouped by metric family:
//
//	fapctl metrics http://127.0.0.1:9090/metrics
//
// The health subcommand probes a whole node set's /healthz and /metrics
// endpoints and prints an aligned liveness table — per-node protocol
// round, lag behind the most advanced node, convergence spread, and (for
// serving nodes) the live plan epoch and access count. It exits non-zero
// when any node is down:
//
//	fapctl health http://127.0.0.1:9090 http://127.0.0.1:9091
//
// The gossip subcommand runs a large cluster (1000 nodes by default)
// that agrees on the allocation by hierarchical tree aggregation or
// epidemic push-sum instead of all-pairs broadcast, certifies the fixed
// point against the KKT conditions, and prints the per-round message
// bill next to broadcast's N·(N−1):
//
//	fapctl gossip -n 1000 -mode both
//	fapctl gossip -n 200 -churn 3 -metrics-out gossip-metrics.json
//
// The placements subcommand queries a solved-catalog snapshot written by
// fapsim -snapshot-out: with no object ids it summarises the snapshot;
// with ids it prints each object's placement (node, share, demand share),
// largest share first.
//
//	fapctl placements catalog.json
//	fapctl placements catalog.json 0 17 4095
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/baseline"
	"filealloc/internal/catalog"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/recovery"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fapctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "checkpoint" {
		return runCheckpoint(args[1:], w)
	}
	if len(args) > 0 && args[0] == "metrics" {
		return runMetrics(args[1:], w)
	}
	if len(args) > 0 && args[0] == "placements" {
		return runPlacements(args[1:], w)
	}
	if len(args) > 0 && args[0] == "health" {
		return runHealth(args[1:], w)
	}
	if len(args) > 0 && args[0] == "gossip" {
		return runGossip(args[1:], w)
	}
	fs := flag.NewFlagSet("fapctl", flag.ContinueOnError)
	n := fs.Int("n", 4, "cluster size")
	topo := fs.String("topology", "ring", "network topology: ring | mesh | star")
	linkCost := fs.Float64("linkcost", 1, "uniform link cost")
	lambda := fs.Float64("lambda", 1, "total access rate")
	mu := fs.Float64("mu", 1.5, "service rate μ")
	k := fs.Float64("k", 1, "delay scaling factor")
	alpha := fs.Float64("alpha", 0.3, "stepsize α")
	epsilon := fs.Float64("epsilon", 1e-3, "termination threshold ε")
	mode := fs.String("mode", "broadcast", "aggregation: broadcast | coordinator")
	useTCP := fs.Bool("tcp", false, "run agents over TCP loopback sockets instead of in-memory channels")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := buildModel(*topo, *n, *linkCost, *lambda, *mu, *k)
	if err != nil {
		return err
	}
	var agentMode agent.Mode
	switch *mode {
	case "broadcast":
		agentMode = agent.Broadcast
	case "coordinator":
		agentMode = agent.Coordinator
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	init := make([]float64, *n)
	init[0] = 0.8
	if *n > 1 {
		init[1] = 0.1
	}
	if *n > 2 {
		init[2] = 0.1
	}

	start := time.Now()
	var (
		finalX    []float64
		rounds    int
		converged bool
		messages  int
	)
	if *useTCP {
		finalX, rounds, converged, messages, err = runTCP(model, init, *alpha, *epsilon, agentMode)
	} else {
		var res agent.ClusterResult
		res, err = agent.RunCluster(context.Background(), agent.ClusterConfig{
			Models:  agent.ModelsFromSingleFile(model),
			Init:    init,
			Alpha:   *alpha,
			Epsilon: *epsilon,
			Mode:    agentMode,
		})
		if err == nil {
			finalX, rounds, converged, messages = res.X, res.Rounds, res.Converged, res.Messages
		}
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	central, err := core.NewAllocator(model, core.WithAlpha(*alpha), core.WithEpsilon(*epsilon))
	if err != nil {
		return err
	}
	centralRes, err := central.Run(context.Background(), init)
	if err != nil {
		return err
	}
	distCost, err := model.Cost(finalX)
	if err != nil {
		return err
	}
	integral, err := baseline.BestIntegral(model)
	if err != nil {
		return err
	}

	transportName := "memory"
	if *useTCP {
		transportName = "tcp"
	}
	fmt.Fprintf(w, "cluster: n=%d topology=%s mode=%s transport=%s\n", *n, *topo, *mode, transportName)
	fmt.Fprintf(w, "distributed: rounds=%d converged=%v messages=%d cost=%.6f elapsed=%s\n",
		rounds, converged, messages, distCost, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "centralized: iterations=%d cost=%.6f\n", centralRes.Iterations, -centralRes.Utility)
	fmt.Fprintf(w, "best integral placement: node=%d cost=%.6f (fragmentation saves %.1f%%)\n",
		integral.Node, integral.Cost, 100*(integral.Cost-distCost)/integral.Cost)
	fmt.Fprintf(w, "allocation: %.4v\n", finalX)
	var maxDiff float64
	for i := range finalX {
		if d := finalX[i] - centralRes.X[i]; d > maxDiff || -d > maxDiff {
			if d < 0 {
				d = -d
			}
			maxDiff = d
		}
	}
	fmt.Fprintf(w, "max |distributed − centralized| = %g\n", maxDiff)
	return nil
}

// checkpointReport is the JSON the checkpoint subcommand prints for a
// valid checkpoint.
type checkpointReport struct {
	File     string    `json:"file"`
	Version  int       `json:"version"`
	Node     int       `json:"node"`
	Peers    int       `json:"peers"`
	Round    int       `json:"round"`
	X        float64   `json:"x"`
	FullX    []float64 `json:"full_x"`
	SumX     float64   `json:"sum_x"`
	Support  []int     `json:"support"`
	Alive    []bool    `json:"alive"`
	Planned  string    `json:"planned"`
	Checksum string    `json:"checksum"`
	// SkippedInvalid counts newer files in the directory that failed
	// validation and were passed over.
	SkippedInvalid int `json:"skipped_invalid,omitempty"`
}

// runCheckpoint implements `fapctl checkpoint <file-or-dir>`: validate a
// crash-recovery checkpoint and print it as JSON. For a directory it
// reports the newest valid checkpoint (matching fapnode's resume choice);
// any error — unreadable path, corrupt file, no valid checkpoint — exits
// non-zero.
func runCheckpoint(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapctl checkpoint", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fapctl checkpoint <checkpoint-file-or-dir>")
	}
	path := fs.Arg(0)
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	var (
		ck      recovery.Checkpoint
		file    string
		skipped int
	)
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var names []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || len(name) < 5 || name[:5] != "ckpt-" || filepath.Ext(name) != ".json" {
				continue
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			return fmt.Errorf("no checkpoint files in %s: %w", path, recovery.ErrNoCheckpoint)
		}
		// Fixed-width names: lexical descending = round descending.
		sort.Sort(sort.Reverse(sort.StringSlice(names)))
		var firstErr error
		found := false
		for _, name := range names {
			c, err := recovery.ReadFile(filepath.Join(path, name))
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				skipped++
				continue
			}
			ck, file, found = c, filepath.Join(path, name), true
			break
		}
		if !found {
			return fmt.Errorf("no valid checkpoint among %d files in %s (first error: %w)", len(names), path, firstErr)
		}
	} else {
		file = path
		if ck, err = recovery.ReadFile(path); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(checkpointReport{
		File:           file,
		Version:        ck.Version,
		Node:           ck.Node,
		Peers:          ck.Peers,
		Round:          ck.Round,
		X:              ck.X,
		FullX:          ck.FullX,
		SumX:           ck.SumX(),
		Support:        ck.Support(),
		Alive:          ck.Alive,
		Planned:        fmt.Sprintf("%#x", ck.Planned),
		Checksum:       ck.Checksum,
		SkippedInvalid: skipped,
	})
}

// runPlacements implements `fapctl placements <snapshot.json> [id...]`:
// query a solved-catalog snapshot written by fapsim -snapshot-out. With
// no ids it prints a one-line summary; with ids it prints each object's
// non-zero placements, largest share first.
func runPlacements(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapctl placements", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit placements as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: fapctl placements [-json] <snapshot.json> [objectID...]")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	snap, err := catalog.DecodeSnapshot(raw)
	if err != nil {
		return err
	}
	if fs.NArg() == 1 {
		fmt.Fprintf(w, "%s: %d objects × %d nodes in %d shards, epoch %d (skew %g, λ %g)\n",
			fs.Arg(0), snap.Objects, snap.Nodes, snap.Shards, snap.Epoch, snap.Skew, snap.Lambda)
		return nil
	}
	type objectPlacements struct {
		Object     int                 `json:"object"`
		Placements []catalog.Placement `json:"placements"`
	}
	var report []objectPlacements
	for _, arg := range fs.Args()[1:] {
		id, err := strconv.Atoi(arg)
		if err != nil {
			return fmt.Errorf("object id %q is not an integer", arg)
		}
		ps, err := snap.Placements(id)
		if err != nil {
			return err
		}
		report = append(report, objectPlacements{Object: id, Placements: ps})
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	for _, op := range report {
		fmt.Fprintf(w, "object %d:\n", op.Object)
		fmt.Fprintf(w, "  %-6s %-10s %s\n", "node", "share", "demand")
		for _, p := range op.Placements {
			fmt.Fprintf(w, "  %-6d %-10.6f %.6f\n", p.Node, p.Share, p.Demand)
		}
	}
	return nil
}

func runTCP(model *costmodel.SingleFile, init []float64, alpha, epsilon float64, mode agent.Mode) (x []float64, rounds int, converged bool, messages int, err error) {
	n := model.Dim()
	placeholder := make([]string, n)
	for i := range placeholder {
		placeholder[i] = "127.0.0.1:0"
	}
	eps := make([]*transport.TCPEndpoint, n)
	defer func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close() //nolint:errcheck // shutdown path
			}
		}
	}()
	for i := 0; i < n; i++ {
		ep, lerr := transport.ListenTCP(i, placeholder)
		if lerr != nil {
			return nil, 0, false, 0, lerr
		}
		eps[i] = ep
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := eps[i].SetPeerAddr(j, eps[j].Addr()); err != nil {
				return nil, 0, false, 0, err
			}
		}
	}
	models := agent.ModelsFromSingleFile(model)
	outcomes := make([]agent.Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = agent.Run(context.Background(), agent.Config{
				Endpoint: eps[i],
				Model:    models[i],
				Init:     init[i],
				Alpha:    alpha,
				Epsilon:  epsilon,
				Mode:     mode,
			})
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, 0, false, 0, fmt.Errorf("node %d: %w", i, e)
		}
	}
	x = make([]float64, n)
	for i, out := range outcomes {
		x[i] = out.X
		messages += out.MessagesSent
	}
	return x, outcomes[0].Rounds, outcomes[0].Converged, messages, nil
}

func buildModel(topo string, n int, linkCost, lambda, mu, k float64) (*costmodel.SingleFile, error) {
	var (
		g   *topology.Graph
		err error
	)
	switch topo {
	case "ring":
		g, err = topology.Ring(n, linkCost)
	case "mesh":
		g, err = topology.FullMesh(n, linkCost)
	case "star":
		g, err = topology.Star(n, linkCost)
	default:
		return nil, fmt.Errorf("unknown -topology %q", topo)
	}
	if err != nil {
		return nil, err
	}
	rates := topology.UniformRates(n, lambda)
	access, err := topology.AccessCosts(g, rates, topology.RoundTrip)
	if err != nil {
		return nil, err
	}
	return costmodel.NewSingleFile(access, []float64{mu}, lambda, k)
}
