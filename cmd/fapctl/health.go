package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// nodeHealth is one row of the health table: the /healthz verdict plus
// the progress gauges scraped from /metrics.
type nodeHealth struct {
	addr     string
	ok       bool
	detail   string
	node     int
	round    float64
	hasRound bool
	spread   float64
	hasSprd  bool
	epoch    float64
	hasEpoch bool
	accesses float64
	hasAcc   bool
}

// runHealth implements `fapctl health <url...>`: probe every node's
// /healthz and /metrics, print an aligned liveness/lag table (lag is each
// node's round distance behind the most advanced node), and fail with a
// non-zero exit when any node is unhealthy.
func runHealth(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapctl health", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "per-probe timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: fapctl health [-timeout d] <url...> (e.g. http://127.0.0.1:9090)")
	}
	client := &http.Client{Timeout: *timeout}
	rows := make([]nodeHealth, fs.NArg())
	for i, arg := range fs.Args() {
		rows[i] = probeNode(client, strings.TrimRight(arg, "/"))
	}

	maxRound := 0.0
	for _, r := range rows {
		if r.ok && r.hasRound && r.round > maxRound {
			maxRound = r.round
		}
	}
	fmt.Fprintf(w, "%-5s %-28s %-9s %7s %5s %12s %7s %9s\n",
		"node", "addr", "status", "round", "lag", "spread", "epoch", "accesses")
	unhealthy := 0
	for _, r := range rows {
		if !r.ok {
			unhealthy++
			fmt.Fprintf(w, "%-5s %-28s %-9s %s\n", "-", r.addr, "DOWN", r.detail)
			continue
		}
		lag := "-"
		round := "-"
		if r.hasRound {
			round = strconv.FormatFloat(r.round, 'f', -1, 64)
			lag = strconv.FormatFloat(maxRound-r.round, 'f', -1, 64)
		}
		fmt.Fprintf(w, "%-5d %-28s %-9s %7s %5s %12s %7s %9s\n",
			r.node, r.addr, "ok", round, lag,
			optValue(r.spread, r.hasSprd, "%.3g"),
			optValue(r.epoch, r.hasEpoch, "%.0f"),
			optValue(r.accesses, r.hasAcc, "%.0f"))
	}
	if unhealthy > 0 {
		return fmt.Errorf("%d of %d nodes unhealthy", unhealthy, len(rows))
	}
	return nil
}

func optValue(v float64, ok bool, format string) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// probeNode checks one node: /healthz must answer 200 with status "ok",
// and /metrics must parse. A node whose liveness probe succeeds but whose
// metrics scrape fails is still reported unhealthy — an observability
// endpoint that cannot be scraped cannot be trusted.
func probeNode(client *http.Client, base string) nodeHealth {
	h := nodeHealth{addr: base}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		h.detail = err.Error()
		return h
	}
	var probe struct {
		Status string `json:"status"`
		Node   int    `json:"node"`
	}
	err = json.NewDecoder(resp.Body).Decode(&probe)
	resp.Body.Close() //nolint:errcheck // read-only response
	if resp.StatusCode != http.StatusOK {
		h.detail = "healthz status " + resp.Status
		return h
	}
	if err != nil {
		h.detail = "healthz body: " + err.Error()
		return h
	}
	if probe.Status != "ok" {
		h.detail = fmt.Sprintf("healthz reports %q", probe.Status)
		return h
	}
	h.node = probe.Node

	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		h.detail = "metrics: " + err.Error()
		return h
	}
	defer mresp.Body.Close() //nolint:errcheck // read-only response
	if mresp.StatusCode != http.StatusOK {
		h.detail = "metrics status " + mresp.Status
		return h
	}
	fams, err := parsePromText(mresp.Body)
	if err != nil {
		h.detail = "metrics: " + err.Error()
		return h
	}
	h.round, h.hasRound = familySum(fams, "fap_agent_round")
	h.spread, h.hasSprd = familySum(fams, "fap_agent_spread")
	h.epoch, h.hasEpoch = familySum(fams, "fap_serve_epoch")
	h.accesses, h.hasAcc = familySum(fams, "fap_serve_accesses_total")
	h.ok = true
	return h
}

// familySum folds a scraped family into one number (the sum of its
// sample values; a single-sample gauge is just its value).
func familySum(fams []*promFamily, name string) (float64, bool) {
	for _, f := range fams {
		if f.name != name || len(f.samples) == 0 {
			continue
		}
		sum := 0.0
		for _, s := range f.samples {
			s = strings.TrimSpace(s)
			if i := strings.LastIndexByte(s, ' '); i >= 0 {
				s = s[i+1:]
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return 0, false
			}
			sum += v
		}
		return sum, true
	}
	return 0, false
}
