package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeNode serves the observability surface of one fapnode: a /healthz
// probe and a /metrics exposition with the given bodies.
func fakeNode(t *testing.T, healthz func(w http.ResponseWriter), metricsText string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		healthz(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, metricsText)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func healthzOK(node int) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","node":%d}`, node)
	}
}

const servingMetrics = `# HELP fap_agent_round current protocol round
# TYPE fap_agent_round gauge
fap_agent_round 12
# HELP fap_agent_spread convergence spread
# TYPE fap_agent_spread gauge
fap_agent_spread 3.5e-05
# HELP fap_serve_epoch current serving plan epoch
# TYPE fap_serve_epoch gauge
fap_serve_epoch 3
# HELP fap_serve_accesses_total access requests served
# TYPE fap_serve_accesses_total counter
fap_serve_accesses_total 145
`

const batchMetrics = `# HELP fap_agent_round current protocol round
# TYPE fap_agent_round gauge
fap_agent_round 9
# HELP fap_agent_spread convergence spread
# TYPE fap_agent_spread gauge
fap_agent_spread 0.002
`

// TestHealthAllHealthy probes a serving node and a batch node: both rows
// must be aligned, the laggard must show its round deficit, and the batch
// node's missing serve gauges must render as "-".
func TestHealthAllHealthy(t *testing.T) {
	serving := fakeNode(t, healthzOK(0), servingMetrics)
	batch := fakeNode(t, healthzOK(1), batchMetrics)

	var out strings.Builder
	if err := run([]string{"health", serving.URL, batch.URL}, &out); err != nil {
		t.Fatalf("health over a healthy cluster: %v\n%s", err, out.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"node", "addr", "status", "round", "lag", "spread", "epoch", "accesses"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("header %q missing column %q", lines[0], want)
		}
	}
	row0 := strings.Fields(lines[1])
	row1 := strings.Fields(lines[2])
	if len(row0) != 8 || len(row1) != 8 {
		t.Fatalf("rows not aligned to 8 columns:\n%q\n%q", lines[1], lines[2])
	}
	// Serving node: round 12, lag 0 (it leads), epoch 3, 145 accesses.
	if row0[0] != "0" || row0[2] != "ok" || row0[3] != "12" || row0[4] != "0" || row0[6] != "3" || row0[7] != "145" {
		t.Errorf("serving row = %q", lines[1])
	}
	// Batch node: round 9, lag 3 behind, no serve gauges.
	if row1[0] != "1" || row1[2] != "ok" || row1[3] != "9" || row1[4] != "3" || row1[6] != "-" || row1[7] != "-" {
		t.Errorf("batch row = %q", lines[2])
	}
}

// TestHealthUnhealthyNodeFails covers the non-zero exit contract: a dead
// listener and a node whose probe reports a non-ok status both count as
// unhealthy, while the healthy node still gets its row.
func TestHealthUnhealthyNodeFails(t *testing.T) {
	healthy := fakeNode(t, healthzOK(0), batchMetrics)
	sick := fakeNode(t, func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"draining","node":1}`)
	}, batchMetrics)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // keep the URL, kill the listener

	var out strings.Builder
	err := run([]string{"health", healthy.URL, sick.URL, dead.URL}, &out)
	if err == nil {
		t.Fatalf("health accepted an unhealthy cluster:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 of 3 nodes unhealthy") {
		t.Errorf("error = %v, want 2 of 3 nodes unhealthy", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("healthy node missing from table:\n%s", out.String())
	}
	if strings.Count(out.String(), "DOWN") != 2 {
		t.Errorf("want two DOWN rows:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `healthz reports "draining"`) {
		t.Errorf("sick node's detail missing:\n%s", out.String())
	}
}

// TestHealthUsage rejects an empty node set.
func TestHealthUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"health"}, &out); err == nil {
		t.Fatal("health accepted zero URLs")
	}
}

// TestFamilySum exercises the scrape folding: labelled samples sum,
// unlabelled gauges pass through, absent families report !ok.
func TestFamilySum(t *testing.T) {
	fams := []*promFamily{
		{name: "plain", samples: []string{" 4"}},
		{name: "labelled", samples: []string{`{a="x"} 1.5`, `{a="y"} 2.5`}},
		{name: "garbled", samples: []string{" not-a-number"}},
	}
	if v, ok := familySum(fams, "plain"); !ok || v != 4 {
		t.Errorf("plain = %v, %t", v, ok)
	}
	if v, ok := familySum(fams, "labelled"); !ok || v != 4 {
		t.Errorf("labelled = %v, %t", v, ok)
	}
	if _, ok := familySum(fams, "garbled"); ok {
		t.Error("garbled sample parsed")
	}
	if _, ok := familySum(fams, "absent"); ok {
		t.Error("absent family reported present")
	}
}
