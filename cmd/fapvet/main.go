// Command fapvet runs the repository's domain-specific static analyzers
// over Go packages and exits nonzero when any contract is violated. It is
// the compile-time complement of the runtime determinism and zero-alloc
// tests: `fapvet ./...` is wired into scripts/check.sh as a tier-2 gate.
//
// Usage:
//
//	fapvet [-C dir] [-only a,b] [-skip a,b] [packages]
//
// Packages default to ./... relative to the working directory (or -C dir). Diagnostics
// print as "file:line: analyzer: message". Exit status is 0 when clean, 1
// when diagnostics were reported, and 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"filealloc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fapvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to disable")
	chdir := fs.String("C", ".", "resolve package patterns relative to this directory")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fapvet [-C dir] [-only a,b] [-skip a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "fapvet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fapvet: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies the -only and -skip selections to the full suite.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run fapvet -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var selected []*lint.Analyzer
	for _, a := range lint.All() {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return selected, nil
}
