// Command fapvet runs the repository's domain-specific static analyzers
// over Go packages and exits nonzero when any contract is violated. It is
// the compile-time complement of the runtime determinism and zero-alloc
// tests: `fapvet ./...` is wired into scripts/check.sh as a tier-2 gate.
//
// Usage:
//
//	fapvet [-C dir] [-only a,b] [-skip a,b] [-json] [-graph] [-unused-ignores] [packages]
//
// Packages default to ./... relative to the working directory (or -C dir).
// Diagnostics print as "file:line: analyzer: message", or as a sorted JSON
// array with -json (an empty run prints "[]", so the output always
// parses). -graph dumps the resolved whole-module call graph the
// interprocedural analyzers share and exits without running them.
// -unused-ignores additionally reports stale //fap:ignore directives; it
// requires the full suite (no -only/-skip), since a directive for a
// skipped analyzer cannot be proven stale. Exit status is 0 when clean, 1
// when diagnostics were reported, and 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"filealloc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fapvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to disable")
	chdir := fs.String("C", ".", "resolve package patterns relative to this directory")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "print diagnostics as a JSON array instead of text")
	graph := fs.Bool("graph", false, "dump the resolved call graph instead of running analyzers")
	unusedIgnores := fs.Bool("unused-ignores", false, "also report //fap:ignore directives that suppress nothing (full suite only)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fapvet [-C dir] [-only a,b] [-skip a,b] [-json] [-graph] [-unused-ignores] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *unusedIgnores && (*only != "" || *skip != "") {
		fmt.Fprintf(stderr, "fapvet: -unused-ignores needs the full suite; a directive for a skipped analyzer cannot be proven stale\n")
		return 2
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "fapvet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fapvet: %v\n", err)
		return 2
	}
	if *graph {
		fmt.Fprint(stdout, lint.DumpGraph(lint.BuildGraph(pkgs)))
		return 0
	}
	diags := lint.RunWithOptions(pkgs, analyzers, lint.Options{ReportUnusedIgnores: *unusedIgnores})
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "fapvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiagnostic is the machine-readable diagnostic shape: the same four
// fields the text form prints, stable across releases.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON prints diags as an indented JSON array. The diagnostics arrive
// sorted by (file, line, analyzer, message) from lint.Run, so the bytes
// are identical across reruns and load orders; an empty run prints "[]".
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{File: d.Pos.Filename, Line: d.Pos.Line, Analyzer: d.Analyzer, Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers applies the -only and -skip selections to the full suite.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run fapvet -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var selected []*lint.Analyzer
	for _, a := range lint.All() {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return selected, nil
}
