package main

import (
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src"

// TestRunFindsFixtureViolations drives the real CLI entry point against the
// seeded fixture module and requires the documented exit protocol: status 1
// with one "file:line: analyzer: message" diagnostic per line.
func TestRunFindsFixtureViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "./transport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "lockguard:") || !strings.Contains(out, "errdrop:") {
		t.Fatalf("expected lockguard and errdrop diagnostics, got:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if parts := strings.SplitN(line, ":", 3); len(parts) < 3 {
			t.Errorf("diagnostic %q is not in file:line: analyzer: message form", line)
		}
	}
}

// TestRunCleanPackage requires exit 0 and no output for a fixture package
// with no violations.
func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "./clockutil"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", stdout.String())
	}
}

// TestRunOnlyRestrictsAnalyzers checks that -only silences diagnostics from
// the unselected analyzers.
func TestRunOnlyRestrictsAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "-only", "errdrop", "./transport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "lockguard:") {
		t.Fatalf("-only errdrop still reported lockguard diagnostics:\n%s", stdout.String())
	}
}

// TestRunList prints every analyzer and exits 0 without loading packages.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "zeroalloc", "ctxfirst", "lockguard", "errdrop", "walltime"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunUsageErrors covers the exit-2 paths: unknown analyzer names, an
// empty selection, and an unresolvable package pattern.
func TestRunUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown analyzer", []string{"-only", "nosuch", "./..."}},
		{"empty selection", []string{"-skip", "determinism,zeroalloc,ctxfirst,lockguard,errdrop,walltime", "./..."}},
		{"bad pattern", []string{"-C", fixtureDir, "./does-not-exist"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
			}
			if stderr.String() == "" {
				t.Fatal("usage error should explain itself on stderr")
			}
		})
	}
}

// TestSelectAnalyzers pins the -only/-skip composition rules.
func TestSelectAnalyzers(t *testing.T) {
	names := func(only, skip string) []string {
		t.Helper()
		as, err := selectAnalyzers(only, skip)
		if err != nil {
			t.Fatalf("selectAnalyzers(%q, %q): %v", only, skip, err)
		}
		var got []string
		for _, a := range as {
			got = append(got, a.Name)
		}
		return got
	}
	if got := names("", ""); len(got) != 6 {
		t.Fatalf("default selection = %v, want all six analyzers", got)
	}
	if got := names("errdrop, lockguard", ""); len(got) != 2 {
		t.Fatalf("-only selection = %v, want two analyzers", got)
	}
	if got := names("", "determinism"); len(got) != 5 {
		t.Fatalf("-skip selection = %v, want five analyzers", got)
	}
}

func TestSelectAnalyzersEmptyIsError(t *testing.T) {
	if _, err := selectAnalyzers("errdrop", "errdrop"); err == nil {
		t.Fatal("selecting then skipping the same analyzer should error, not run nothing")
	}
}
