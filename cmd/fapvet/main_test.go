package main

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src"

// TestRunFindsFixtureViolations drives the real CLI entry point against the
// seeded fixture module and requires the documented exit protocol: status 1
// with one "file:line: analyzer: message" diagnostic per line.
func TestRunFindsFixtureViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "./transport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "lockguard:") || !strings.Contains(out, "errdrop:") {
		t.Fatalf("expected lockguard and errdrop diagnostics, got:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if parts := strings.SplitN(line, ":", 3); len(parts) < 3 {
			t.Errorf("diagnostic %q is not in file:line: analyzer: message form", line)
		}
	}
}

// TestRunCleanPackage requires exit 0 and no output for a fixture package
// with no violations.
func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "./clockutil"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", stdout.String())
	}
}

// TestRunOnlyRestrictsAnalyzers checks that -only silences diagnostics from
// the unselected analyzers.
func TestRunOnlyRestrictsAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "-only", "errdrop", "./transport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "lockguard:") {
		t.Fatalf("-only errdrop still reported lockguard diagnostics:\n%s", stdout.String())
	}
}

// TestRunList prints every analyzer and exits 0 without loading packages.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "zeroalloc", "ctxfirst", "lockguard", "errdrop", "walltime", "goleak", "lockorder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunUsageErrors covers the exit-2 paths: unknown analyzer names, an
// empty selection, and an unresolvable package pattern.
func TestRunUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown analyzer", []string{"-only", "nosuch", "./..."}},
		{"empty selection", []string{"-skip", "determinism,zeroalloc,ctxfirst,lockguard,errdrop,walltime,goleak,lockorder", "./..."}},
		{"bad pattern", []string{"-C", fixtureDir, "./does-not-exist"}},
		{"unused-ignores with only", []string{"-unused-ignores", "-only", "errdrop", "-C", fixtureDir, "./clockutil"}},
		{"unused-ignores with skip", []string{"-unused-ignores", "-skip", "errdrop", "-C", fixtureDir, "./clockutil"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
			}
			if stderr.String() == "" {
				t.Fatal("usage error should explain itself on stderr")
			}
		})
	}
}

// TestSelectAnalyzers pins the -only/-skip composition rules.
func TestSelectAnalyzers(t *testing.T) {
	names := func(only, skip string) []string {
		t.Helper()
		as, err := selectAnalyzers(only, skip)
		if err != nil {
			t.Fatalf("selectAnalyzers(%q, %q): %v", only, skip, err)
		}
		var got []string
		for _, a := range as {
			got = append(got, a.Name)
		}
		return got
	}
	if got := names("", ""); len(got) != 8 {
		t.Fatalf("default selection = %v, want all eight analyzers", got)
	}
	if got := names("errdrop, lockguard", ""); len(got) != 2 {
		t.Fatalf("-only selection = %v, want two analyzers", got)
	}
	if got := names("", "determinism"); len(got) != 7 {
		t.Fatalf("-skip selection = %v, want seven analyzers", got)
	}
}

func TestSelectAnalyzersEmptyIsError(t *testing.T) {
	if _, err := selectAnalyzers("errdrop", "errdrop"); err == nil {
		t.Fatal("selecting then skipping the same analyzer should error, not run nothing")
	}
}

// TestRunJSON pins the machine-readable output: a run with findings emits
// a JSON array of {file, line, analyzer, message} objects sorted the same
// way as the text form, and a clean run emits exactly "[]" so the report
// always parses.
func TestRunJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", fixtureDir, "-json", "./transport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics for the seeded transport fixture")
	}
	for i, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic %d has empty fields: %+v", i, d)
		}
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	if !sorted {
		t.Errorf("-json diagnostics are not sorted by (file, line, analyzer):\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixtureDir, "-json", "./clockutil"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -json run exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("clean -json run printed %q, want []", stdout.String())
	}
}

// TestRunOutputByteStable is the ordering golden test: the same packages
// given in different pattern orders must produce byte-identical text and
// JSON output, in text and JSON form alike — diagnostics are sorted by
// (file, line, analyzer, message) across packages, not emitted in load
// order.
func TestRunOutputByteStable(t *testing.T) {
	for _, mode := range []struct {
		name string
		args []string
	}{
		{"text", nil},
		{"json", []string{"-json"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			order1 := append(append([]string{"-C", fixtureDir}, mode.args...), "./transport", "./recovery", "./costmodel")
			order2 := append(append([]string{"-C", fixtureDir}, mode.args...), "./costmodel", "./recovery", "./transport")
			var out1, out2, stderr strings.Builder
			code1 := run(order1, &out1, &stderr)
			code2 := run(order2, &out2, &stderr)
			if code1 != 1 || code2 != 1 {
				t.Fatalf("exit codes = %d, %d, want 1; stderr: %s", code1, code2, stderr.String())
			}
			if out1.String() != out2.String() {
				t.Fatalf("output depends on pattern order:\n--- order1\n%s\n--- order2\n%s", out1.String(), out2.String())
			}
			if rerun := func() string {
				var b strings.Builder
				run(order1, &b, &stderr)
				return b.String()
			}(); rerun != out1.String() {
				t.Fatalf("output differs across identical reruns:\n--- first\n%s\n--- rerun\n%s", out1.String(), rerun)
			}
		})
	}
}

// TestRunGraphDump checks the -graph debug flag: it prints the resolved
// call graph instead of diagnostics and exits 0 even on packages full of
// seeded violations.
func TestRunGraphDump(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixtureDir, "-graph", "./graph"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fix/graph.CallsHelper", "-> fix/graph.Helper (module)", "[opaque calls: 1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("-graph dump missing %q:\n%s", want, out)
		}
	}
}

// TestRunUnusedIgnores drives the audit end to end: the staleignore
// fixture's used directive stays silent, its stale directive is reported
// and flips the exit code, and without the flag the same package is clean.
func TestRunUnusedIgnores(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", fixtureDir, "./staleignore"}, &stdout, &stderr); code != 0 {
		t.Fatalf("without -unused-ignores exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	code := run([]string{"-C", fixtureDir, "-unused-ignores", "./staleignore"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-unused-ignores exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "suppresses nothing") || !strings.Contains(out, "determinism") {
		t.Fatalf("-unused-ignores output does not report the stale determinism directive:\n%s", out)
	}
	if strings.Contains(out, "ctxfirst") {
		t.Fatalf("-unused-ignores reported the used ctxfirst directive:\n%s", out)
	}
}
