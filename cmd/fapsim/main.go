// Command fapsim regenerates the paper's evaluation figures (Kurose &
// Simha, "A Microeconomic Approach to Optimal File Allocation", ICDCS
// 1986) and this reproduction's validation/ablation studies.
//
// Usage:
//
//	fapsim [-csv] [-v] [-workers N] [-chunk N] <experiment>
//
// where <experiment> is one of: fig3, fig4, fig5, fig6, fig8, fig9,
// validate, second-order, decentralized, price-directed, chaos,
// chaos-churn, catalog, all.
// -v streams agent round events to stderr for the experiments that run
// the decentralized runtime. -workers bounds the parameter-sweep
// concurrency (default: GOMAXPROCS); -workers 1 reproduces the serial
// path exactly — results are identical either way, only wall-clock
// changes. -chunk overrides the number of contiguous sweep items a
// worker claims per scheduling step (default: automatic, ⌈n/(4·workers)⌉);
// results are identical for every chunk size, so the flag exists for
// performance experiments only.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/experiments"
	"filealloc/internal/metrics"
	"filealloc/internal/sweep"
	"filealloc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fapsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fapsim", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit raw CSV instead of rendered tables/plots")
	accesses := fs.Int("accesses", 200000, "simulated accesses for the validate experiment")
	seed := fs.Int64("seed", 1, "simulation seed")
	verbose := fs.Bool("v", false, "log agent round events to stderr (decentralized/chaos)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"parameter-sweep concurrency; 1 runs every sweep serially (results are identical either way)")
	chunk := fs.Int("chunk", 0,
		"sweep items claimed per scheduling step; 0 picks the size automatically (results are identical either way)")
	metricsOut := fs.String("metrics-out", "",
		"write the run's metrics-registry snapshot as JSON to this file ('-' for stdout)")
	objects := fs.Int("objects", 4096, "catalog size for the catalog experiment")
	epochs := fs.Int("epochs", 3, "drift/re-solve epochs for the catalog experiment")
	drift := fs.Float64("drift", 0.1, "per-epoch fraction of catalog objects whose demand is re-drawn")
	snapshotOut := fs.String("snapshot-out", "",
		"write the solved catalog snapshot as JSON to this file (catalog experiment; query it with 'fapctl placements')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if *chunk < 0 {
		return fmt.Errorf("-chunk must be non-negative, got %d", *chunk)
	}
	var obs agent.Observer
	if *verbose {
		obs = agent.NewLogObserver(os.Stderr)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one experiment, got %d args (use 'all' to run everything)", fs.NArg())
	}
	ctx := sweep.WithWorkers(context.Background(), *workers)
	if *chunk > 0 {
		ctx = sweep.WithChunkSize(ctx, *chunk)
	}
	// A registry collects sweep metrics (via the context) for every
	// experiment and the full agent/transport surface for chaos-churn,
	// which threads it through the cluster runtime itself.
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.New()
		ctx = sweep.WithMetrics(ctx, reg)
	}
	name := fs.Arg(0)
	runners := map[string]func() error{
		"fig3":           func() error { return runFig3(ctx, w, *csv) },
		"fig4":           func() error { return runFig4(ctx, w, *csv) },
		"fig5":           func() error { return runFig5(ctx, w, *csv) },
		"fig6":           func() error { return runFig6(ctx, w, *csv) },
		"fig8":           func() error { return runFig8(ctx, w, *csv) },
		"fig9":           func() error { return runFig9(ctx, w, *csv) },
		"validate":       func() error { return runValidate(w, *accesses, *seed, *csv) },
		"second-order":   func() error { return runSecondOrder(ctx, w, *csv) },
		"decentralized":  func() error { return runDecentralized(ctx, w, obs, *csv) },
		"price-directed": func() error { return runPriceDirected(ctx, w, *csv) },
		"chaos":          func() error { return runChaos(ctx, w, obs, *csv) },
		"chaos-churn":    func() error { return runChaosChurn(ctx, w, obs, reg, *csv) },
		"copies":         func() error { return runCopies(ctx, w, *csv) },
		"neighbor":       func() error { return runNeighbor(ctx, w, *csv) },
		"availability":   func() error { return runAvailability(w, *csv) },
		"adaptive":       func() error { return runAdaptive(ctx, w, *seed, *csv) },
		"quantize":       func() error { return runQuantize(w, *csv) },
		"records":        func() error { return runRecords(ctx, w, *csv) },
		"catalog": func() error {
			return runCatalog(ctx, w, *objects, *epochs, *drift, *seed, *snapshotOut, reg, *csv)
		},
	}
	if name == "all" {
		order := []string{"fig3", "fig4", "fig5", "fig6", "fig8", "fig9",
			"validate", "second-order", "decentralized", "price-directed",
			"chaos", "chaos-churn", "copies", "neighbor", "availability", "adaptive", "quantize", "records", "catalog"}
		for _, exp := range order {
			fmt.Fprintf(w, "==== %s ====\n", exp)
			if err := runners[exp](); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			fmt.Fprintln(w)
		}
		return writeMetricsSnapshot(reg, *metricsOut, w)
	}
	runner, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want fig3|fig4|fig5|fig6|fig8|fig9|validate|second-order|decentralized|price-directed|chaos|chaos-churn|copies|neighbor|availability|adaptive|quantize|records|catalog|all)", name)
	}
	if err := runner(); err != nil {
		return err
	}
	return writeMetricsSnapshot(reg, *metricsOut, w)
}

// writeMetricsSnapshot dumps the registry as indented snapshot JSON to
// path ("-": the experiment's own output writer). A nil registry (no
// -metrics-out flag) is a no-op.
func writeMetricsSnapshot(reg *metrics.Registry, path string, w io.Writer) error {
	if reg == nil {
		return nil
	}
	b, err := metrics.EncodeJSON(reg.Snapshot())
	if err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if path == "-" {
		_, err := w.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}

func runRecords(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.RecordPopularity(ctx, nil, 10000)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "skew,hot_node_records,hot_node_share,share_error,cost_penalty_pct")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%d,%g,%g,%g\n", r.Skew, r.HotNodeRecords, r.HotNodeShare, r.ShareError, r.CostPenaltyPct)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — non-uniform record popularity (§4's relaxation), 10000 records")
	fmt.Fprintln(w, "the optimal ACCESS shares are popularity-independent; the records realizing them are not")
	fmt.Fprintf(w, "  %-10s %-18s %-16s %-14s %s\n", "Zipf s", "hot-node records", "hot-node share", "share error", "cost penalty")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10g %-18d %-16.4f %-14.6f %.6f%%\n",
			r.Skew, r.HotNodeRecords, r.HotNodeShare, r.ShareError, r.CostPenaltyPct)
	}
	return nil
}

func runQuantize(w io.Writer, csv bool) error {
	rows, err := experiments.Quantize(nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "records,max_deviation,cost_penalty_pct")
		for _, r := range rows {
			fmt.Fprintf(w, "%d,%g,%g\n", r.Records, r.MaxDeviation, r.CostPenaltyPct)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — rounding fractions to record boundaries (§8.1)")
	fmt.Fprintf(w, "  %-10s %-16s %s\n", "records", "max deviation", "cost penalty")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d %-16.6f %.6f%%\n", r.Records, r.MaxDeviation, r.CostPenaltyPct)
	}
	return nil
}

func runCopies(ctx context.Context, w io.Writer, csv bool) error {
	res, err := experiments.OptimalCopies(ctx)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "m,access_cost,storage_cost,consistency_cost,total_cost")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%d,%g,%g,%g,%g\n", r.M, r.AccessCost, r.StorageCost, r.ConsistencyCost, r.TotalCost)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — optimal number of copies (§8.2), 6-node ring, 20% updates")
	fmt.Fprintf(w, "  %-4s %-12s %-12s %-14s %-12s\n", "m", "access", "storage", "consistency", "total")
	for i, r := range res.Rows {
		marker := ""
		if i == res.Best {
			marker = "  ← optimal"
		}
		fmt.Fprintf(w, "  %-4d %-12.4f %-12.4f %-14.4f %-12.4f%s\n",
			r.M, r.AccessCost, r.StorageCost, r.ConsistencyCost, r.TotalCost, marker)
	}
	return nil
}

func runNeighbor(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.NeighborOnly(ctx)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "topology,full_iterations,full_messages,neighbor_iterations,neighbor_messages,cost_gap_pct")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%g\n", r.Topology, r.FullIterations, r.FullMessages,
				r.NeighborIterations, r.NeighborMessages, r.CostGapPct)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — neighbours-only communication (§8.2), 8 nodes, start (1,0,…)")
	fmt.Fprintf(w, "  %-10s %-22s %-22s %s\n", "topology", "full (iters / msgs)", "neighbor (iters / msgs)", "cost gap")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-22s %-22s %.3f%%\n", r.Topology,
			fmt.Sprintf("%d / %d", r.FullIterations, r.FullMessages),
			fmt.Sprintf("%d / %d", r.NeighborIterations, r.NeighborMessages),
			r.CostGapPct)
	}
	return nil
}

func runAvailability(w io.Writer, csv bool) error {
	rows, err := experiments.Availability(0.1)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "strategy,copies,expected_accessible,all_or_nothing")
		for _, r := range rows {
			fmt.Fprintf(w, "%q,%d,%g,%g\n", r.Strategy, r.Copies, r.ExpectedAccessible, r.AllOrNothing)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — graceful degradation (§4), node failure probability 0.1")
	fmt.Fprintf(w, "  %-38s %-8s %-22s %s\n", "strategy", "copies", "E[accessible fraction]", "P[whole file up]")
	for _, r := range rows {
		whole := fmt.Sprintf("%.4f", r.AllOrNothing)
		if r.AllOrNothing != r.AllOrNothing { // NaN
			whole = "—"
		}
		fmt.Fprintf(w, "  %-38s %-8d %-22.4f %s\n", r.Strategy, r.Copies, r.ExpectedAccessible, whole)
	}
	return nil
}

func runAdaptive(ctx context.Context, w io.Writer, seed int64, csv bool) error {
	rows, err := experiments.Adaptive(ctx, nil, seed)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "half_life,steady_gap_pct,post_drift_gap_pct,recovered_gap_pct")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%g,%g,%g\n", r.HalfLife, r.SteadyGapPct, r.PostDriftGapPct, r.RecoveredGapPct)
		}
		return nil
	}
	fmt.Fprintln(w, "Extension — estimation-driven adaptation (§8), workload drift at t=300")
	fmt.Fprintln(w, "cost gap vs clairvoyant optimum (lower is better)")
	fmt.Fprintf(w, "  %-12s %-16s %-16s %s\n", "half-life", "steady state", "after drift", "after recovery")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12g %-16s %-16s %s\n", r.HalfLife,
			fmt.Sprintf("%.2f%%", r.SteadyGapPct),
			fmt.Sprintf("%.2f%%", r.PostDriftGapPct),
			fmt.Sprintf("%.2f%%", r.RecoveredGapPct))
	}
	return nil
}

func runFig3(ctx context.Context, w io.Writer, csv bool) error {
	profiles, err := experiments.Fig3(ctx)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "alpha,iteration,cost")
		for _, p := range profiles {
			for i, c := range p.Costs {
				fmt.Fprintf(w, "%g,%d,%g\n", p.Alpha, i, c)
			}
		}
		return nil
	}
	fmt.Fprintln(w, "Figure 3 — convergence profiles, 4-node ring, start (0.8,0.1,0.1,0)")
	fmt.Fprintln(w, "paper: 4 its @ α=0.67, 10 @ 0.30, 20 @ 0.19, 51 @ 0.08; optimum (0.25,…) ")
	series := make([][]float64, len(profiles))
	labels := make([]string, len(profiles))
	for i, p := range profiles {
		series[i] = p.Costs
		labels[i] = fmt.Sprintf("%s (%d iterations)", p.Label, p.Iterations)
	}
	plot, err := trace.AsciiPlot(series, labels, 72, 18)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, plot)
	for _, p := range profiles {
		fmt.Fprintf(w, "  %-8s iterations=%-3d final cost=%.6f x=%.4v\n",
			p.Label, p.Iterations, p.Costs[len(p.Costs)-1], p.FinalX)
	}
	return nil
}

func runFig4(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.Fig4(ctx, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "link_cost,integral_cost,fragmented_cost,reduction_pct,iterations")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%g,%g,%g,%d\n", r.LinkCost, r.IntegralCost, r.FragmentedCost, r.ReductionPct, r.Iterations)
		}
		return nil
	}
	fmt.Fprintln(w, "Figure 4 — fragmentation vs best integral placement (start: whole file at node 4)")
	fmt.Fprintln(w, "paper: ≈25% cost reduction (equal link costs of unstated magnitude)")
	fmt.Fprintf(w, "  %-10s %-14s %-16s %-12s %s\n", "link cost", "integral cost", "fragmented cost", "reduction", "iterations")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10g %-14.4f %-16.4f %-11.1f%% %d\n",
			r.LinkCost, r.IntegralCost, r.FragmentedCost, r.ReductionPct, r.Iterations)
	}
	// Show the v=1 convergence profile, the figure's actual curve.
	spark, err := trace.Sparkline(rows[0].Profile, 60)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  profile (v=%g): %s\n", rows[0].LinkCost, spark)
	return nil
}

func runFig5(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.Fig5(ctx, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "alpha,iterations,converged")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%d,%v\n", r.Alpha, r.Iterations, r.Converged)
		}
		return nil
	}
	fmt.Fprintln(w, "Figure 5 — iterations to convergence vs stepsize α (4-node ring)")
	fmt.Fprintln(w, "paper: steep growth at small α, wide near-optimal basin")
	var series []float64
	for _, r := range rows {
		if r.Converged {
			series = append(series, float64(r.Iterations))
		}
	}
	plot, err := trace.AsciiPlot([][]float64{series}, []string{"iterations (converged α, ascending)"}, 72, 14)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, plot)
	for _, r := range rows {
		if !r.Converged {
			fmt.Fprintf(w, "  α=%.2f did not converge (stability threshold 2/s ≈ 1.30)\n", r.Alpha)
		}
	}
	return nil
}

func runFig6(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.Fig6(ctx, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "n,best_alpha,iterations")
		for _, r := range rows {
			fmt.Fprintf(w, "%d,%g,%d\n", r.N, r.BestAlpha, r.Iterations)
		}
		return nil
	}
	fmt.Fprintln(w, "Figure 6 — iterations (best α) vs network size, fully connected, unit links")
	fmt.Fprintln(w, "paper: iteration count essentially flat in N")
	fmt.Fprintf(w, "  %-4s %-10s %s\n", "N", "best α", "iterations")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-4d %-10.2f %d %s\n", r.N, r.BestAlpha, r.Iterations, strings.Repeat("█", r.Iterations))
	}
	return nil
}

func runFig8(ctx context.Context, w io.Writer, csv bool) error {
	profiles, err := experiments.Fig8(ctx)
	if err != nil {
		return err
	}
	return printMultiCopy(w, "Figure 8 — multi-copy virtual ring (m=2) profiles, α=0.1",
		"paper: comm-dominated links (4,1,1,1) oscillate more than unit links", profiles, csv)
}

func runFig9(ctx context.Context, w io.Writer, csv bool) error {
	profiles, err := experiments.Fig9(ctx)
	if err != nil {
		return err
	}
	return printMultiCopy(w, "Figure 9 — decreasing α on the oscillating ring (links 4,1,1,1)",
		"paper: smaller α → smaller oscillations; §7.3 decay rule terminates", profiles, csv)
}

func printMultiCopy(w io.Writer, title, note string, profiles []experiments.MultiCopyProfile, csv bool) error {
	if csv {
		fmt.Fprintln(w, "label,iteration,cost")
		for _, p := range profiles {
			for i, c := range p.Costs {
				fmt.Fprintf(w, "%q,%d,%g\n", p.Label, i, c)
			}
		}
		return nil
	}
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, note)
	series := make([][]float64, len(profiles))
	labels := make([]string, len(profiles))
	for i, p := range profiles {
		series[i] = p.Costs
		labels[i] = fmt.Sprintf("%s (osc %.4f, best %.4f)", p.Label, p.Oscillation, p.BestCost)
	}
	plot, err := trace.AsciiPlot(series, labels, 72, 16)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, plot)
	return nil
}

func runValidate(w io.Writer, accesses int, seed int64, csv bool) error {
	rows, err := experiments.Validate(accesses, seed)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "label,analytic,simulated,error_pct")
		for _, r := range rows {
			fmt.Fprintf(w, "%q,%g,%g,%g\n", r.Label, r.Analytic, r.Simulated, r.ErrorPct)
		}
		return nil
	}
	fmt.Fprintln(w, "Validation — analytic equation-1 cost vs discrete-event simulation")
	fmt.Fprintf(w, "  %-18s %-26s %-10s %-10s %s\n", "allocation", "x", "analytic", "simulated", "error")
	for _, r := range rows {
		xs := make([]string, len(r.X))
		for i, v := range r.X {
			xs[i] = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "  %-18s %-26s %-10.4f %-10.4f %.2f%%\n",
			r.Label, "("+strings.Join(xs, ", ")+")", r.Analytic, r.Simulated, r.ErrorPct)
	}
	return nil
}

func runSecondOrder(ctx context.Context, w io.Writer, csv bool) error {
	rows, err := experiments.AblationSecondOrder(ctx, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "scale,first_order_iterations,second_order_iterations")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%d,%d\n", r.Scale, r.FirstOrderIterations, r.SecondOrderIterations)
		}
		return nil
	}
	fmt.Fprintln(w, "Ablation — second-derivative algorithm (§8.2) vs first-order under cost scaling")
	fmt.Fprintf(w, "  %-8s %-24s %s\n", "scale", "1st-order iterations", "2nd-order iterations")
	for _, r := range rows {
		first := fmt.Sprintf("%d", r.FirstOrderIterations)
		if r.FirstOrderIterations < 0 {
			first = "diverged"
		}
		fmt.Fprintf(w, "  %-8g %-24s %d\n", r.Scale, first, r.SecondOrderIterations)
	}
	return nil
}

func runDecentralized(ctx context.Context, w io.Writer, obs agent.Observer, csv bool) error {
	rows, err := experiments.AblationDecentralized(ctx, obs)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "mode,rounds,central_iterations,messages,max_allocation_diff")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%d,%d,%d,%g\n", r.Mode, r.Rounds, r.CentralIterations, r.Messages, r.MaxAllocationDiff)
		}
		return nil
	}
	fmt.Fprintln(w, "Ablation — decentralized runtime vs in-process solver (figure-3 system, α=0.3)")
	fmt.Fprintf(w, "  %-12s %-8s %-10s %-10s %s\n", "mode", "rounds", "central", "messages", "max |Δx|")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-8d %-10d %-10d %g\n", r.Mode, r.Rounds, r.CentralIterations, r.Messages, r.MaxAllocationDiff)
	}
	return nil
}

func runChaos(ctx context.Context, w io.Writer, obs agent.Observer, csv bool) error {
	rows, err := experiments.Chaos(ctx, obs)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "scenario,mode,outcome,rounds,messages,faults_injected,send_retries,discarded,timeouts,max_allocation_diff")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%g\n",
				r.Scenario, r.Mode, chaosOutcome(r), r.Rounds, r.Messages,
				r.FaultsInjected, r.SendRetries, r.Discarded, r.Timeouts, r.MaxAllocationDiff)
		}
		return nil
	}
	fmt.Fprintln(w, "Chaos — decentralized runtime under injected transport faults (figure-3 system, α=0.3)")
	fmt.Fprintln(w, "contract: converge bit-identical to the fault-free allocation, or time out loudly")
	fmt.Fprintf(w, "  %-11s %-12s %-10s %-8s %-10s %-8s %-9s %-10s %-9s %s\n",
		"scenario", "mode", "outcome", "rounds", "messages", "faults", "retries", "discarded", "timeouts", "max |Δx|")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-11s %-12s %-10s %-8d %-10d %-8d %-9d %-10d %-9d %g\n",
			r.Scenario, r.Mode, chaosOutcome(r), r.Rounds, r.Messages,
			r.FaultsInjected, r.SendRetries, r.Discarded, r.Timeouts, r.MaxAllocationDiff)
	}
	return nil
}

func runChaosChurn(ctx context.Context, w io.Writer, obs agent.Observer, reg *metrics.Registry, csv bool) error {
	rows, err := experiments.ChaosChurn(ctx, obs, reg)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "scenario,converged,rounds,survivors,restarts,crashes,departs,rejoins,max_kkt_gap,sum_error")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%v,%d,%d,%d,%d,%d,%d,%g,%g\n",
				r.Scenario, r.Converged, r.Rounds, r.Survivors, r.Restarts,
				r.Crashes, r.Departs, r.Rejoins, r.MaxKKTGap, r.SumError)
		}
		return nil
	}
	fmt.Fprintln(w, "Chaos-churn — supervised crash recovery and membership churn (figure-3 system, α=0.3)")
	fmt.Fprintln(w, "contract: converge to the KKT optimum of the surviving support, or fail with a typed error")
	fmt.Fprintf(w, "  %-18s %-10s %-8s %-10s %-9s %-8s %-8s %-8s %-12s %s\n",
		"scenario", "outcome", "rounds", "survivors", "restarts", "crashes", "departs", "rejoins", "max KKT gap", "|Σx−1|")
	for _, r := range rows {
		outcome := "failed"
		if r.Converged {
			outcome = "converged"
		}
		fmt.Fprintf(w, "  %-18s %-10s %-8d %-10d %-9d %-8d %-8d %-8d %-12.4g %g\n",
			r.Scenario, outcome, r.Rounds, r.Survivors, r.Restarts,
			r.Crashes, r.Departs, r.Rejoins, r.MaxKKTGap, r.SumError)
	}
	return nil
}

func runCatalog(ctx context.Context, w io.Writer, objects, epochs int, drift float64, seed int64, snapshotOut string, reg *metrics.Registry, csv bool) error {
	if seed < 0 {
		return fmt.Errorf("-seed must be non-negative for the catalog experiment, got %d", seed)
	}
	rows, cat, err := experiments.Catalog(ctx, experiments.CatalogConfig{
		Objects:       objects,
		Epochs:        epochs,
		DriftFraction: drift,
		Seed:          uint64(seed),
	}, reg, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	perSec := func(r experiments.CatalogRow) float64 {
		if r.ElapsedNS <= 0 {
			return 0
		}
		return float64(r.Objects) / (float64(r.ElapsedNS) * 1e-9)
	}
	if csv {
		fmt.Fprintln(w, "phase,objects,drift_applied,drifted,skipped,warm,fallback,cold,steps,elapsed_ns,objects_per_sec")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g\n",
				r.Phase, r.Objects, r.DriftApplied, r.Drifted, r.Skipped,
				r.Warm, r.Fallback, r.Cold, r.Steps, r.ElapsedNS, perSec(r))
		}
	} else {
		fmt.Fprintf(w, "Catalog — sharded batch solves with warm-start re-solves (%d objects, drift %g/epoch)\n",
			objects, drift)
		fmt.Fprintln(w, "warm passes skip un-drifted objects and re-solve the rest incrementally (KKT-certified)")
		fmt.Fprintf(w, "  %-10s %-8s %-8s %-9s %-7s %-9s %-7s %-9s %s\n",
			"phase", "drifted", "skipped", "warm", "fb", "cold", "steps", "ms", "objects/sec")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-10s %-8d %-8d %-9d %-7d %-9d %-7d %-9.1f %.0f\n",
				r.Phase, r.Drifted, r.Skipped, r.Warm, r.Fallback, r.Cold,
				r.Steps, float64(r.ElapsedNS)/1e6, perSec(r))
		}
		if coldNS, warmNS := rows[0].ElapsedNS, maxElapsed(rows[1:]); coldNS > 0 && warmNS > 0 {
			fmt.Fprintf(w, "  warm vs cold throughput: %.1fx (slowest warm epoch)\n",
				float64(coldNS)/float64(warmNS))
		}
	}
	if snapshotOut != "" {
		b, err := cat.Snapshot().Encode()
		if err != nil {
			return fmt.Errorf("encoding catalog snapshot: %w", err)
		}
		if err := os.WriteFile(snapshotOut, b, 0o644); err != nil {
			return fmt.Errorf("writing catalog snapshot: %w", err)
		}
	}
	return nil
}

// maxElapsed returns the largest per-row elapsed time, 0 when rows is
// empty or untimed.
func maxElapsed(rows []experiments.CatalogRow) int64 {
	var max int64
	for _, r := range rows {
		if r.ElapsedNS > max {
			max = r.ElapsedNS
		}
	}
	return max
}

func chaosOutcome(r experiments.ChaosRow) string {
	if r.TimedOut {
		return "timeout"
	}
	if r.Converged {
		return "converged"
	}
	return "failed"
}

func runPriceDirected(ctx context.Context, w io.Writer, csv bool) error {
	rep, err := experiments.AblationPriceDirected(ctx)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "mechanism,iterations,worst_infeasibility,cost,monotone")
		fmt.Fprintf(w, "price-directed,%d,%g,%g,\n", rep.PriceIterations, rep.PriceWorstInfeasibility, rep.PriceCost)
		fmt.Fprintf(w, "resource-directed,%d,%g,%g,%v\n", rep.ResourceIterations, rep.ResourceWorstInfeasibility, rep.ResourceCost, rep.ResourceMonotone)
		return nil
	}
	fmt.Fprintln(w, "Ablation — price-directed tâtonnement vs resource-directed algorithm (§2)")
	fmt.Fprintf(w, "  %-20s %-12s %-22s %-10s %s\n", "mechanism", "iterations", "worst infeasibility", "cost", "monotone")
	fmt.Fprintf(w, "  %-20s %-12d %-22g %-10.6f %s\n", "price-directed", rep.PriceIterations, rep.PriceWorstInfeasibility, rep.PriceCost, "no guarantee")
	fmt.Fprintf(w, "  %-20s %-12d %-22g %-10.6f %v\n", "resource-directed", rep.ResourceIterations, rep.ResourceWorstInfeasibility, rep.ResourceCost, rep.ResourceMonotone)
	return nil
}
