package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"filealloc/internal/catalog"
	"filealloc/internal/metrics"
)

func TestRunRequiresExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"fig3", "fig4"}, &b); err == nil {
		t.Error("two experiments accepted")
	}
	if err := run([]string{"figure-99"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig3RenderedOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig3"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 3",
		"α=0.67",
		"α=0.08",
		"iterations=51",
		"final cost=2.800000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVOutputs(t *testing.T) {
	// Every experiment must produce parseable CSV with its documented
	// header. (validate is exercised with a tiny access count.)
	tests := []struct {
		name   string
		args   []string
		header string
	}{
		{"fig3", []string{"-csv", "fig3"}, "alpha,iteration,cost"},
		{"fig4", []string{"-csv", "fig4"}, "link_cost,integral_cost,fragmented_cost,reduction_pct,iterations"},
		{"fig5", []string{"-csv", "fig5"}, "alpha,iterations,converged"},
		{"fig6", []string{"-csv", "fig6"}, "n,best_alpha,iterations"},
		{"fig8", []string{"-csv", "fig8"}, "label,iteration,cost"},
		{"fig9", []string{"-csv", "fig9"}, "label,iteration,cost"},
		{"validate", []string{"-csv", "-accesses", "5000", "validate"}, "label,analytic,simulated,error_pct"},
		{"second-order", []string{"-csv", "second-order"}, "scale,first_order_iterations,second_order_iterations"},
		{"decentralized", []string{"-csv", "decentralized"}, "mode,rounds,central_iterations,messages,max_allocation_diff"},
		{"price-directed", []string{"-csv", "price-directed"}, "mechanism,iterations,worst_infeasibility,cost,monotone"},
		{"chaos", []string{"-csv", "chaos"}, "scenario,mode,outcome,rounds,messages,faults_injected,send_retries,discarded,timeouts,max_allocation_diff"},
		{"copies", []string{"-csv", "copies"}, "m,access_cost,storage_cost,consistency_cost,total_cost"},
		{"neighbor", []string{"-csv", "neighbor"}, "topology,full_iterations,full_messages,neighbor_iterations,neighbor_messages,cost_gap_pct"},
		{"availability", []string{"-csv", "availability"}, "strategy,copies,expected_accessible,all_or_nothing"},
		{"adaptive", []string{"-csv", "adaptive"}, "half_life,steady_gap_pct,post_drift_gap_pct,recovered_gap_pct"},
		{"quantize", []string{"-csv", "quantize"}, "records,max_deviation,cost_penalty_pct"},
		{"records", []string{"-csv", "records"}, "skew,hot_node_records,hot_node_share,share_error,cost_penalty_pct"},
		{"catalog", []string{"-csv", "-objects", "64", "-epochs", "2", "catalog"}, "phase,objects,drift_applied,drifted,skipped,warm,fallback,cold,steps,elapsed_ns,objects_per_sec"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err != nil {
				t.Fatalf("run: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(b.String()), "\n")
			if lines[0] != tt.header {
				t.Errorf("header = %q, want %q", lines[0], tt.header)
			}
			if len(lines) < 2 {
				t.Error("no data rows")
			}
			want := strings.Count(tt.header, ",")
			for i, line := range lines[1:] {
				if strings.Contains(line, `"`) {
					// Quoted fields may contain commas; skip the
					// naive count for those rows.
					continue
				}
				if got := strings.Count(line, ","); got != want {
					t.Errorf("row %d has %d commas, want %d: %q", i+1, got, want, line)
					break
				}
			}
		})
	}
}

func TestRunRenderedOutputs(t *testing.T) {
	// Every experiment's human-readable rendering must succeed and carry
	// its title line.
	tests := []struct {
		name  string
		args  []string
		title string
	}{
		{"fig4", []string{"fig4"}, "Figure 4"},
		{"fig5", []string{"fig5"}, "Figure 5"},
		{"fig6", []string{"fig6"}, "Figure 6"},
		{"fig8", []string{"fig8"}, "Figure 8"},
		{"fig9", []string{"fig9"}, "Figure 9"},
		{"validate", []string{"-accesses", "5000", "validate"}, "Validation"},
		{"second-order", []string{"second-order"}, "second-derivative algorithm"},
		{"decentralized", []string{"decentralized"}, "decentralized runtime"},
		{"price-directed", []string{"price-directed"}, "price-directed tâtonnement"},
		{"chaos", []string{"chaos"}, "injected transport faults"},
		{"copies", []string{"copies"}, "optimal number of copies"},
		{"neighbor", []string{"neighbor"}, "neighbours-only communication"},
		{"availability", []string{"availability"}, "graceful degradation"},
		{"adaptive", []string{"adaptive"}, "estimation-driven adaptation"},
		{"quantize", []string{"quantize"}, "record boundaries"},
		{"records", []string{"records"}, "non-uniform record popularity"},
		{"catalog", []string{"-objects", "64", "-epochs", "2", "catalog"}, "sharded batch solves with warm-start re-solves"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(b.String(), tt.title) {
				t.Errorf("output missing title %q", tt.title)
			}
			if len(b.String()) < 100 {
				t.Errorf("suspiciously short output: %q", b.String())
			}
		})
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workers", "0", "fig3"}, &b); err == nil {
		t.Error("-workers 0 accepted")
	}
	if err := run([]string{"-workers", "-3", "fig3"}, &b); err == nil {
		t.Error("negative -workers accepted")
	}

	// The flag changes wall-clock only, never output.
	var serial, parallel strings.Builder
	if err := run([]string{"-csv", "-workers", "1", "fig5"}, &serial); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := run([]string{"-csv", "-workers", "8", "fig5"}, &parallel); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Error("-workers 1 and -workers 8 emitted different fig5 CSV")
	}
}

func TestRunChunkFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-chunk", "-1", "fig3"}, &b); err == nil {
		t.Error("negative -chunk accepted")
	}

	// Like -workers, -chunk changes scheduling only, never output: a
	// degenerate 1-item chunk and one spanning the whole sweep must both
	// match the automatic size.
	var auto, tiny, huge strings.Builder
	if err := run([]string{"-csv", "-workers", "4", "fig5"}, &auto); err != nil {
		t.Fatalf("auto-chunk run: %v", err)
	}
	if err := run([]string{"-csv", "-workers", "4", "-chunk", "1", "fig5"}, &tiny); err != nil {
		t.Fatalf("chunk-1 run: %v", err)
	}
	if err := run([]string{"-csv", "-workers", "4", "-chunk", "1000", "fig5"}, &huge); err != nil {
		t.Fatalf("chunk-1000 run: %v", err)
	}
	if auto.String() != tiny.String() || auto.String() != huge.String() {
		t.Error("-chunk changed fig5 CSV output")
	}
}

func TestRunFig6CSVValues(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-csv", "fig6"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 18 { // header + N = 4..20
		t.Errorf("got %d lines, want 18", len(lines))
	}
	if !strings.HasPrefix(lines[1], "4,") || !strings.HasPrefix(lines[17], "20,") {
		t.Errorf("unexpected first/last rows: %q / %q", lines[1], lines[17])
	}
}

// TestRunCatalogSnapshotOut runs the catalog experiment with -snapshot-out
// and validates the dumped file: it decodes under the strict snapshot
// decoder and answers placement queries for every object.
func TestRunCatalogSnapshotOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	var b strings.Builder
	if err := run([]string{"-objects", "48", "-epochs", "1", "-snapshot-out", path, "catalog"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := catalog.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if snap.Objects != 48 || snap.Epoch != 1 {
		t.Errorf("snapshot = %d objects at epoch %d, want 48 at 1", snap.Objects, snap.Epoch)
	}
	for id := 0; id < snap.Objects; id++ {
		ps, err := snap.Placements(id)
		if err != nil {
			t.Fatalf("Placements(%d): %v", id, err)
		}
		if len(ps) == 0 {
			t.Errorf("object %d has no placements", id)
		}
	}
}

// TestRunCatalogMetricsOut pins the catalog runner's registry plumbing:
// -metrics-out must carry the catalog counter families, not just the
// sweep's.
func TestRunCatalogMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var b strings.Builder
	if err := run([]string{"-objects", "64", "-epochs", "1", "-metrics-out", path, "catalog"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	names := map[string]bool{}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, h := range snap.Histograms {
		names[h.Name] = true
	}
	for _, want := range []string{
		"fap_catalog_solves_total",
		"fap_catalog_objects_skipped_total",
		"fap_catalog_epochs_total",
		"fap_catalog_resolve_iterations",
	} {
		if !names[want] {
			t.Errorf("snapshot missing family %q", want)
		}
	}
}

// TestRunMetricsOut runs the chaos-churn experiment with -metrics-out and
// validates the dumped snapshot: it decodes under the strict snapshot
// decoder and carries the agent, transport, and fault families.
func TestRunMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-churn matrix is slow")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	var b strings.Builder
	if err := run([]string{"-metrics-out", path, "chaos-churn"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	names := map[string]bool{}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, h := range snap.Histograms {
		names[h.Name] = true
	}
	for _, want := range []string{
		"fap_agent_rounds_started_total",
		"fap_agent_checkpoint_saves_total",
		"fap_transport_sends_total",
		"fap_transport_faults_total",
		"fap_transport_sent_bytes",
	} {
		if !names[want] {
			t.Errorf("snapshot missing family %q", want)
		}
	}
}
