package main

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"filealloc/internal/metrics"
)

// metricsMux builds the observability surface served on -metrics-addr:
// the registry in Prometheus text format on /metrics, a liveness probe on
// /healthz, and the net/http/pprof profiling handlers under /debug/pprof/.
// The handlers are mounted on a private mux (not http.DefaultServeMux) so
// nothing leaks onto the default mux of a process that embeds run().
func metricsMux(reg *metrics.Registry, node int) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "node": node})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
