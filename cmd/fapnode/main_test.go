package main

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"filealloc/internal/recovery"
)

func TestParseVector(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		n       int
		want    []float64
		wantErr bool
	}{
		{"empty means default", "", 3, nil, false},
		{"good", "0.8,0.1,0.1", 3, []float64{0.8, 0.1, 0.1}, false},
		{"spaces tolerated", " 1 , 2 ", 2, []float64{1, 2}, false},
		{"wrong count", "1,2", 3, nil, true},
		{"not a number", "1,x,3", 3, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parseVector(tt.in, tt.n)
			if (err != nil) != tt.wantErr {
				t.Fatalf("error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got %v, want %v", got, tt.want)
					break
				}
			}
		})
	}
}

func TestSplitNonEmpty(t *testing.T) {
	if got := splitNonEmpty(""); got != nil {
		t.Errorf("empty input: %v", got)
	}
	got := splitNonEmpty("a, ,b,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("got %v", got)
	}
}

func TestBuildModelTopologies(t *testing.T) {
	rates := []float64{0.25, 0.25, 0.25, 0.25}
	for _, topo := range []string{"ring", "mesh", "star"} {
		m, err := buildModel(topo, 4, 1, rates, 1.5, 1)
		if err != nil {
			t.Errorf("%s: %v", topo, err)
			continue
		}
		if m.Dim() != 4 || m.Lambda() != 1 {
			t.Errorf("%s: dim=%d lambda=%v", topo, m.Dim(), m.Lambda())
		}
	}
	if _, err := buildModel("torus", 4, 1, rates, 1.5, 1); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-addrs", "x"}, &b, nil); err == nil {
		t.Error("single-node cluster accepted")
	}
	if err := run([]string{"-addrs", "a,b", "-id", "7"}, &b, nil); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := run([]string{"-addrs", "a,b", "-mode", "gossip"}, &b, nil); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-addrs", "a,b", "-init", "1,2,3"}, &b, nil); err == nil {
		t.Error("mismatched -init accepted")
	}
}

func TestRunRecoveryFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-addrs", "a,b", "-mode", "coordinator", "-checkpoint-dir", t.TempDir()}, &b, nil); err == nil {
		t.Error("-checkpoint-dir accepted in coordinator mode")
	}
	if err := run([]string{"-addrs", "a,b", "-mode", "coordinator", "-max-restarts", "2"}, &b, nil); err == nil {
		t.Error("-max-restarts accepted in coordinator mode")
	}
}

// TestRunClusterWithCheckpoints drives a 3-node cluster with supervised
// restart and on-disk checkpointing enabled: every node must converge,
// leave a valid checkpoint history behind, and report its resume state.
func TestRunClusterWithCheckpoints(t *testing.T) {
	addrs := "127.0.0.1:17651,127.0.0.1:17652,127.0.0.1:17653"
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-id", string(rune('0' + i)),
				"-addrs", addrs,
				"-init", "1,0,0",
				"-round-timeout", "10s",
				"-checkpoint-dir", dirs[i],
				"-max-restarts", "2",
			}, &outs[i], nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		var res result
		if err := json.Unmarshal([]byte(outs[i].String()), &res); err != nil {
			t.Fatalf("node %d output %q: %v", i, outs[i].String(), err)
		}
		if !res.Converged || res.Restarts != 0 || res.Resumed != 0 {
			t.Errorf("node %d: converged=%t restarts=%d resumed=%d", i, res.Converged, res.Restarts, res.Resumed)
		}
		store, err := recovery.NewStore(dirs[i], i, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		ck, ok, err := store.Latest()
		if err != nil || !ok {
			t.Fatalf("node %d: no valid checkpoint left behind (ok=%t err=%v)", i, ok, err)
		}
		if ck.Round == 0 || math.Abs(ck.SumX()-1) > 1e-9 {
			t.Errorf("node %d: latest checkpoint round=%d Σx=%v", i, ck.Round, ck.SumX())
		}
	}
}

// TestRunFullClusterInProcess drives the complete fapnode CLI path for a
// 3-node cluster on loopback ports, one run() per goroutine, and checks
// the negotiated fragments.
func TestRunFullClusterInProcess(t *testing.T) {
	addrs := "127.0.0.1:17641,127.0.0.1:17642,127.0.0.1:17643"
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-id", string(rune('0' + i)),
				"-addrs", addrs,
				"-topology", "ring",
				"-init", "1,0,0",
				"-alpha", "0.3",
				"-round-timeout", "10s",
			}, &outs[i], nil)
		}(i)
	}
	wg.Wait()
	var total float64
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		var res result
		if err := json.Unmarshal([]byte(outs[i].String()), &res); err != nil {
			t.Fatalf("node %d output %q: %v", i, outs[i].String(), err)
		}
		if !res.Converged {
			t.Errorf("node %d did not converge", i)
		}
		if res.Node != i {
			t.Errorf("node %d reported id %d", i, res.Node)
		}
		total += res.Fragment
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fragments sum to %g, want 1", total)
	}
}
