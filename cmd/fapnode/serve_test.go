package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"filealloc/internal/recovery"
)

// getAccess hits node 0's /access endpoint and decodes the reply.
func getAccess(url string) (accessReply, error) {
	var rep accessReply
	resp, err := http.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close() //nolint:errcheck // test fixture
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return rep, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return rep, json.NewDecoder(resp.Body).Decode(&rep)
}

// TestRunServeModeReplansAndShutsDownGracefully is the serving-mode
// regression: a 3-node cluster converges, node 0 keeps serving /access,
// skewed demand triggers a certified live re-plan (epoch advances), and a
// fake SIGTERM drains the server, flushes a final checkpoint, and closes
// the observability listener.
func TestRunServeModeReplansAndShutsDownGracefully(t *testing.T) {
	addrs := "127.0.0.1:17661,127.0.0.1:17662,127.0.0.1:17663"
	metricsAddr := "127.0.0.1:17660"
	ckptDir := t.TempDir()
	sigc := make(chan os.Signal, 1)

	var wg sync.WaitGroup
	outs := make([]strings.Builder, 3)
	errs := make([]error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = run([]string{
			"-id", "0", "-addrs", addrs, "-init", "1,0,0",
			"-round-timeout", "10s",
			"-mu", "200", "-v",
			"-metrics-addr", metricsAddr,
			"-checkpoint-dir", ckptDir,
			"-serve",
			"-serve-halflife", "0.2",
			"-replan-interval", "25ms",
			"-drift-threshold", "0.1",
		}, &outs[0], sigc)
	}()
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-id", fmt.Sprint(i), "-addrs", addrs, "-init", "1,0,0",
				"-round-timeout", "10s", "-mu", "200",
			}, &outs[i], nil)
		}(i)
	}

	accessURL := "http://" + metricsAddr + "/access?origin=1"
	// Wait for convergence: /access returns 503 until the plan activates.
	var ready bool
	for i := 0; i < 200 && !ready; i++ {
		if _, err := getAccess(accessURL); err == nil {
			ready = true
		} else {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatal("/access never became ready")
	}

	// Hammer origin 1: sensed demand drifts far from the uniform plan the
	// cluster converged for, so the replan loop must adopt a new epoch.
	var epoch int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := getAccess(accessURL)
		if err != nil {
			t.Fatalf("access during serving: %v", err)
		}
		if rep.LatencyMicros <= 0 {
			t.Fatalf("access reply has non-positive latency: %+v", rep)
		}
		epoch = rep.Epoch
		if epoch >= 2 {
			break
		}
		// Throttle so sensed demand stays within the model's capacity;
		// an infeasible re-plan would be rejected, not adopted.
		time.Sleep(5 * time.Millisecond)
	}
	if epoch < 2 {
		t.Fatalf("no live re-plan adopted: still at epoch %d", epoch)
	}

	// Graceful shutdown on a fake SIGTERM.
	sigc <- syscall.SIGTERM
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	var res result
	if err := json.Unmarshal([]byte(outs[0].String()), &res); err != nil {
		t.Fatalf("node 0 output %q: %v", outs[0].String(), err)
	}
	if !res.Converged {
		t.Error("node 0 did not report convergence before serving")
	}

	// The metrics listener must be closed after shutdown.
	if _, err := http.Get("http://" + metricsAddr + "/healthz"); err == nil {
		t.Error("observability listener still accepting connections after shutdown")
	}

	// The final checkpoint must reflect the re-planned allocation: written
	// past the protocol rounds, normalized, and skewed toward node 1.
	store, err := recovery.NewStore(ckptDir, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("no final checkpoint flushed (ok=%t err=%v)", ok, err)
	}
	if ck.Round <= res.Rounds {
		t.Errorf("final checkpoint round %d does not supersede protocol round %d", ck.Round, res.Rounds)
	}
	sum := 0.0
	for _, x := range ck.FullX {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("final checkpoint Σx = %g, want 1", sum)
	}
	if len(ck.FullX) == 3 && ck.FullX[1] < 0.5 {
		t.Errorf("re-planned allocation x = %v does not favor the hot origin 1", ck.FullX)
	}
}
