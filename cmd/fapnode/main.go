// Command fapnode runs ONE node of the decentralized file allocation
// protocol over TCP. Start one fapnode per network node (one per machine,
// container, or terminal); together they negotiate the optimal
// fragmentation of the file and each prints its own final fragment.
//
// Every node must be given the same topology, workload, and algorithm
// parameters; its node id selects which row it plays. Example 4-node
// cluster on one machine:
//
//	fapnode -id 0 -addrs :7000,:7001,:7002,:7003 -init 0.8,0.1,0.1,0.0
//	fapnode -id 1 -addrs :7000,:7001,:7002,:7003 -init 0.8,0.1,0.1,0.0
//	fapnode -id 2 -addrs :7000,:7001,:7002,:7003 -init 0.8,0.1,0.1,0.0
//	fapnode -id 3 -addrs :7000,:7001,:7002,:7003 -init 0.8,0.1,0.1,0.0
//
// By default the topology is a ring with unit link costs and the paper's
// parameters (μ=1.5, k=1, λ=1 split uniformly).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/metrics"
	"filealloc/internal/recovery"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

func main() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigc); err != nil {
		fmt.Fprintln(os.Stderr, "fapnode:", err)
		os.Exit(1)
	}
}

type result struct {
	Node      int     `json:"node"`
	Fragment  float64 `json:"fragment"`
	Rounds    int     `json:"rounds"`
	Converged bool    `json:"converged"`
	Messages  int     `json:"messages"`
	Restarts  int     `json:"restarts"`
	Resumed   int     `json:"resumed_from_round,omitempty"`
}

// run executes one fapnode. A signal on sigc (SIGINT/SIGTERM in main;
// injectable in tests, nil blocks forever) triggers a graceful shutdown:
// the batch protocol is cancelled cleanly, and serving mode drains
// in-flight /access requests, flushes a final checkpoint, and closes the
// metrics listener before returning.
func run(args []string, out io.Writer, sigc <-chan os.Signal) error {
	fs := flag.NewFlagSet("fapnode", flag.ContinueOnError)
	id := fs.Int("id", 0, "this node's id (row in -addrs)")
	addrsFlag := fs.String("addrs", "", "comma-separated listen addresses, one per node (required)")
	topo := fs.String("topology", "ring", "network topology: ring | mesh | star")
	linkCost := fs.Float64("linkcost", 1, "uniform link cost")
	ratesFlag := fs.String("rates", "", "comma-separated per-node access rates (default: uniform summing to -lambda)")
	lambda := fs.Float64("lambda", 1, "total access rate when -rates is not given")
	mu := fs.Float64("mu", 1.5, "service rate μ (uniform)")
	k := fs.Float64("k", 1, "delay/communication scaling factor")
	alpha := fs.Float64("alpha", 0.3, "stepsize α")
	epsilon := fs.Float64("epsilon", 1e-3, "termination threshold ε")
	initFlag := fs.String("init", "", "comma-separated initial allocation (default: uniform)")
	mode := fs.String("mode", "broadcast", "aggregation mode: broadcast | coordinator")
	coordinator := fs.Int("coordinator", 0, "coordinator node id in coordinator mode")
	timeout := fs.Duration("round-timeout", 30*time.Second, "per-round message wait")
	maxRounds := fs.Int("max-rounds", 10000, "round budget")
	verbose := fs.Bool("v", false, "log round events and transport errors to stderr")
	ckptDir := fs.String("checkpoint-dir", "", "write per-round checkpoints here and resume from the latest valid one on start (broadcast mode)")
	maxRestarts := fs.Int("max-restarts", 0, "supervised in-process restarts after a crash-class failure (0: run once)")
	quorum := fs.Int("quorum", 0, "finish a round at its deadline once this many reports (incl. own) arrived; 0 requires full rounds (broadcast mode)")
	departAfter := fs.Int("depart-after", 0, "declare a peer departed after this many consecutive missed quorum rounds (requires -quorum)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (Prometheus text), /healthz, and /debug/pprof on this address (empty: disabled)")
	serveFlag := fs.Bool("serve", false, "keep serving /access after convergence with live drift-triggered re-planning (requires -metrics-addr and -mode broadcast)")
	serveHalfLife := fs.Float64("serve-halflife", 2, "serving mode: demand-estimate half-life in seconds")
	driftThreshold := fs.Float64("drift-threshold", 0.25, "serving mode: relative per-origin demand drift that triggers a re-plan")
	replanInterval := fs.Duration("replan-interval", time.Second, "serving mode: how often sensed demand is checked for drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitNonEmpty(*addrsFlag)
	n := len(addrs)
	if n < 2 {
		return fmt.Errorf("-addrs must list at least two nodes, got %d", n)
	}
	if *id < 0 || *id >= n {
		return fmt.Errorf("-id %d outside cluster of %d nodes", *id, n)
	}

	rates, err := parseVector(*ratesFlag, n)
	if err != nil {
		return fmt.Errorf("parsing -rates: %w", err)
	}
	if rates == nil {
		rates = topology.UniformRates(n, *lambda)
	}
	init, err := parseVector(*initFlag, n)
	if err != nil {
		return fmt.Errorf("parsing -init: %w", err)
	}
	if init == nil {
		init = topology.UniformRates(n, 1) // uniform fractions
	}

	g, err := buildGraph(*topo, n, *linkCost)
	if err != nil {
		return err
	}
	model, err := modelFromGraph(g, rates, *mu, *k)
	if err != nil {
		return err
	}
	var agentMode agent.Mode
	switch *mode {
	case "broadcast":
		agentMode = agent.Broadcast
	case "coordinator":
		agentMode = agent.Coordinator
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	recoverable := *ckptDir != "" || *maxRestarts != 0
	if recoverable && agentMode != agent.Broadcast {
		return fmt.Errorf("-checkpoint-dir and -max-restarts require -mode broadcast")
	}
	if *serveFlag {
		if *metricsAddr == "" {
			return fmt.Errorf("-serve requires -metrics-addr (the /access endpoint is served there)")
		}
		if agentMode != agent.Broadcast {
			return fmt.Errorf("-serve requires -mode broadcast (serving needs the full converged allocation)")
		}
	}

	var obs agent.Observer = agent.NopObserver{}
	if *verbose {
		obs = agent.NewLogObserver(os.Stderr)
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.New()
		obs = agent.MultiObserver{obs, agent.NewMetricsObserver(reg)}
	}
	// Read-loop errors (oversized or garbled frames, resets mid-stream)
	// happen outside any Send/Recv call; route them to the observer so
	// they are never silently swallowed.
	readErrs := transport.WithReadErrorHook(func(remote string, err error) {
		obs.TransportError(*id, fmt.Sprintf("read from %s: %v", remote, err))
	})
	ep, err := transport.ListenTCP(*id, addrs, readErrs)
	if err != nil {
		return err
	}
	defer ep.Close() //nolint:errcheck // process exit follows

	fmt.Fprintf(os.Stderr, "fapnode %d: listening on %s, C_i=%.4f, waiting for peers...\n",
		*id, ep.Addr(), model.AccessCost(*id))

	var (
		agentEP transport.Endpoint = ep
		srv     *http.Server
		access  *accessServer
	)
	if reg != nil {
		agentEP = transport.NewMeteredEndpoint(ep, reg)
		mux := metricsMux(reg, *id)
		if *serveFlag {
			access, err = newAccessServer(*id, n, g, *mu, *k, serveOptions{
				enabled:  true,
				halfLife: *serveHalfLife,
				drift:    *driftThreshold,
				interval: *replanInterval,
			}, reg, obs)
			if err != nil {
				return err
			}
			mux.HandleFunc("/access", access.handleAccess)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv = &http.Server{Handler: mux}
		go srv.Serve(ln)  //nolint:errcheck // reports ErrServerClosed on shutdown
		defer srv.Close() //nolint:errcheck // backstop; the serve path shuts down gracefully first
		fmt.Fprintf(os.Stderr, "fapnode %d: observability on http://%s (/metrics, /healthz, /debug/pprof)\n", *id, ln.Addr())
	}

	// A signal cancels the protocol context: the batch run unwinds
	// cleanly, and serving mode leaves its serve loop to drain and exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var signalled atomic.Bool
	go func() {
		select {
		case <-sigc:
			signalled.Store(true)
			cancel()
		case <-ctx.Done():
		}
	}()

	cfg := agent.Config{
		Endpoint:      agentEP,
		Model:         agent.ModelsFromSingleFile(model)[*id],
		Init:          init[*id],
		Alpha:         *alpha,
		Epsilon:       *epsilon,
		MaxRounds:     *maxRounds,
		Mode:          agentMode,
		CoordinatorID: *coordinator,
		RoundTimeout:  *timeout,
		Observer:      obs,
		Quorum:        *quorum,
		DepartAfter:   *departAfter,
	}

	resumedFrom := 0
	var store recovery.Resumer = recovery.NewMemStore(*id, n)
	if *ckptDir != "" {
		s, err := recovery.NewStore(*ckptDir, *id, n, 0)
		if err != nil {
			return err
		}
		store = s
		// A restarted process picks up where its predecessor died: the
		// latest valid checkpoint becomes the starting round.
		ck, ok, err := s.Latest()
		if err != nil {
			return err
		}
		if ok {
			cfg.StartRound = ck.Round
			cfg.Init = ck.X
			cfg.InitFullX = ck.FullX
			cfg.InitAlive = ck.Alive
			cfg.InitPlanned = ck.Planned
			resumedFrom = ck.Round
			obs.RecoveryEvent(*id, ck.Round, "resume", "process start resuming from checkpoint")
			fmt.Fprintf(os.Stderr, "fapnode %d: resuming from round-%d checkpoint in %s\n", *id, ck.Round, s.Dir())
		}
	}

	var (
		outcome  agent.Outcome
		restarts int
	)
	if *maxRestarts != 0 {
		sout, serr := recovery.RunSupervisedAgent(ctx, cfg, recovery.SupervisorConfig{
			MaxRestarts: *maxRestarts,
			Seed:        int64(*id) + 1,
		}, store)
		if serr != nil {
			if signalled.Load() {
				fmt.Fprintf(os.Stderr, "fapnode %d: interrupted, shutting down cleanly\n", *id)
				return nil
			}
			return serr
		}
		outcome, restarts = sout.Outcome, sout.Restarts
	} else {
		if recoverable {
			cfg.Checkpoint = store
		}
		outcome, err = agent.Run(ctx, cfg)
		if err != nil {
			if signalled.Load() {
				fmt.Fprintf(os.Stderr, "fapnode %d: interrupted, shutting down cleanly\n", *id)
				return nil
			}
			return err
		}
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(result{
		Node:      *id,
		Fragment:  outcome.X,
		Rounds:    outcome.Rounds,
		Converged: outcome.Converged,
		Messages:  outcome.MessagesSent,
		Restarts:  restarts,
		Resumed:   resumedFrom,
	}); err != nil {
		return err
	}
	if access == nil {
		return nil
	}
	return serveUntilSignal(ctx, access, srv, store, outcome, rates, *id, *ckptDir != "")
}

// serveUntilSignal is the serving-mode tail of run: activate the
// converged plan, sense demand and re-plan on drift until the signal
// context is cancelled, then drain in-flight /access requests, flush a
// final checkpoint, and close the observability listener.
func serveUntilSignal(ctx context.Context, access *accessServer, srv *http.Server, store recovery.Resumer, outcome agent.Outcome, rates []float64, id int, persist bool) error {
	fullX := outcome.FullX
	if len(fullX) == 0 {
		return fmt.Errorf("fapnode %d: serve mode needs the full allocation but the outcome has none", id)
	}
	access.activate(fullX, rates)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		access.replanLoop(ctx)
	}()
	fmt.Fprintf(os.Stderr, "fapnode %d: serving /access (drift threshold %.2f, interval %s); SIGINT/SIGTERM drains and exits\n",
		id, access.opts.drift, access.opts.interval)
	<-ctx.Done()
	wg.Wait()

	// Drain: in-flight /access requests finish under the plan that
	// admitted them; new connections are refused.
	shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shcancel()
	if err := srv.Shutdown(shctx); err != nil {
		fmt.Fprintf(os.Stderr, "fapnode %d: draining access server: %v\n", id, err)
	}

	epoch, x := access.snapshot()
	if persist {
		alive := outcome.Alive
		if len(alive) != len(x) {
			alive = make([]bool, len(x))
			for i := range alive {
				alive[i] = true
			}
		}
		round := outcome.Rounds + epoch
		if err := store.SaveRound(round, x[id], x, alive, 0); err != nil {
			return fmt.Errorf("fapnode %d: final checkpoint: %w", id, err)
		}
		fmt.Fprintf(os.Stderr, "fapnode %d: flushed final checkpoint (round %d, epoch %d)\n", id, round, epoch)
	}
	fmt.Fprintf(os.Stderr, "fapnode %d: shutdown complete (served epoch %d)\n", id, epoch)
	return nil
}

func buildModel(topo string, n int, linkCost float64, rates []float64, mu, k float64) (*costmodel.SingleFile, error) {
	g, err := buildGraph(topo, n, linkCost)
	if err != nil {
		return nil, err
	}
	return modelFromGraph(g, rates, mu, k)
}

func buildGraph(topo string, n int, linkCost float64) (*topology.Graph, error) {
	switch topo {
	case "ring":
		return topology.Ring(n, linkCost)
	case "mesh":
		return topology.FullMesh(n, linkCost)
	case "star":
		return topology.Star(n, linkCost)
	default:
		return nil, fmt.Errorf("unknown -topology %q", topo)
	}
}

func modelFromGraph(g *topology.Graph, rates []float64, mu, k float64) (*costmodel.SingleFile, error) {
	access, err := topology.AccessCosts(g, rates, topology.RoundTrip)
	if err != nil {
		return nil, err
	}
	var lambda float64
	for _, r := range rates {
		lambda += r
	}
	return costmodel.NewSingleFile(access, []float64{mu}, lambda, k)
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseVector(s string, n int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := splitNonEmpty(s)
	if len(parts) != n {
		return nil, fmt.Errorf("want %d values, got %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
