package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/estimate"
	"filealloc/internal/metrics"
	"filealloc/internal/topology"
)

// serveOptions collects the -serve flag family.
type serveOptions struct {
	enabled  bool
	halfLife float64
	drift    float64
	interval time.Duration
}

// accessServer keeps a converged fapnode *serving*: it answers /access
// requests under the current plan while an estimate.Tracker senses demand
// online, and a background loop re-solves (warm, KKT-certified) whenever
// the sensed rates drift from the ones the plan was solved for. Plans are
// swapped under the lock between requests, so in-flight requests always
// complete under the plan that admitted them. Wall-clock time is allowed
// here: this is the CLI edge, not the deterministic numeric path.
type accessServer struct {
	node  int
	n     int
	k     float64
	muSvc float64
	pair  [][]float64
	opts  serveOptions

	replan agent.ReplanConfig
	obs    agent.Observer
	start  time.Time

	accesses   *metrics.Counter
	epochGauge *metrics.Gauge
	replansOK  *metrics.Counter
	replansRej *metrics.Counter

	mu           sync.Mutex
	ready        bool
	epoch        int
	x            []float64
	plannedRates []float64
	tracker      *estimate.Tracker
	lastT        float64
}

// newAccessServer wires the serving state for one node. The plan arrives
// later via activate (after the batch protocol converges).
func newAccessServer(node, n int, g *topology.Graph, muSvc, k float64, opts serveOptions, reg *metrics.Registry, obs agent.Observer) (*accessServer, error) {
	pair, err := topology.PairCosts(g, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("serve: pair costs: %w", err)
	}
	tracker, err := estimate.NewTracker(n, opts.halfLife)
	if err != nil {
		return nil, fmt.Errorf("serve: tracker: %w", err)
	}
	mus := make([]float64, n)
	for i := range mus {
		mus[i] = muSvc
	}
	as := &accessServer{
		node:    node,
		n:       n,
		k:       k,
		muSvc:   muSvc,
		pair:    pair,
		opts:    opts,
		obs:     obs,
		start:   time.Now(),
		tracker: tracker,
		replan: agent.ReplanConfig{
			N:  n,
			Mu: mus,
			BuildModel: func(rates []float64, lambda float64, support []int) (*costmodel.SingleFile, error) {
				access, err := topology.AccessCosts(g, rates, topology.RoundTrip)
				if err != nil {
					return nil, err
				}
				acc := make([]float64, len(support))
				svc := make([]float64, len(support))
				for j, i := range support {
					acc[j] = access[i]
					svc[j] = mus[i]
				}
				return costmodel.NewSingleFile(acc, svc, lambda, k)
			},
		},
		accesses:   reg.Counter("fap_serve_accesses_total", "access requests served"),
		epochGauge: reg.Gauge("fap_serve_epoch", "current serving plan epoch"),
		replansOK:  reg.Counter("fap_serve_replans_total", "live re-plans by outcome", metrics.L("outcome", "certified")),
		replansRej: reg.Counter("fap_serve_replans_total", "live re-plans by outcome", metrics.L("outcome", "rejected")),
	}
	return as, nil
}

// activate installs the converged allocation as epoch 1 and starts
// accepting /access traffic.
func (as *accessServer) activate(x, plannedRates []float64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.ready = true
	as.epoch = 1
	as.x = append([]float64(nil), x...)
	as.plannedRates = append([]float64(nil), plannedRates...)
	as.epochGauge.Set(1)
}

// now is the serving clock: seconds since the server started.
func (as *accessServer) now() float64 { return time.Since(as.start).Seconds() }

// accessReply is the /access response body.
type accessReply struct {
	Node          int     `json:"node"`
	Origin        int     `json:"origin"`
	Epoch         int     `json:"epoch"`
	LatencyMicros int64   `json:"latency_micros"`
	Fragment      float64 `json:"fragment"`
}

// handleAccess serves one access request: observe demand for the origin,
// charge the plan's expected access cost (transfer plus M/M/1 waiting at
// each hosting replica, weighted by the plan), and reply.
func (as *accessServer) handleAccess(w http.ResponseWriter, r *http.Request) {
	origin := as.node
	if o := r.URL.Query().Get("origin"); o != "" {
		v, err := strconv.Atoi(o)
		if err != nil || v < 0 || v >= as.n {
			http.Error(w, fmt.Sprintf("bad origin %q", o), http.StatusBadRequest)
			return
		}
		origin = v
	}
	as.mu.Lock()
	if !as.ready {
		as.mu.Unlock()
		http.Error(w, "allocation not converged yet", http.StatusServiceUnavailable)
		return
	}
	t := as.now()
	if t < as.lastT {
		t = as.lastT
	}
	as.lastT = t
	if err := as.tracker.Observe(origin, t); err != nil {
		as.obs.MessageDiscarded(as.node, as.epoch, "serve observe: "+err.Error())
	}
	epoch := as.epoch
	x := append([]float64(nil), as.x...)
	lambda := 0.0
	for _, rr := range as.plannedRates {
		lambda += rr
	}
	as.mu.Unlock()
	as.accesses.Inc()

	lat := 0.0
	for i, xi := range x {
		if xi <= 1e-9 {
			continue
		}
		room := as.muSvc - lambda*xi
		if room < as.muSvc*0.01 {
			room = as.muSvc * 0.01
		}
		lat += xi * (as.pair[origin][i] + as.k/room)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(accessReply{
		Node:          as.node,
		Origin:        origin,
		Epoch:         epoch,
		LatencyMicros: int64(lat * 1e6),
		Fragment:      x[as.node],
	})
}

// snapshot returns the current epoch and plan (for the final checkpoint
// flush on shutdown).
func (as *accessServer) snapshot() (epoch int, x []float64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.epoch, append([]float64(nil), as.x...)
}

// replanLoop polls sensed demand every interval and re-solves on drift.
// It returns when the context is cancelled.
func (as *accessServer) replanLoop(ctx context.Context) {
	ticker := time.NewTicker(as.opts.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			as.replanOnce(ctx)
		}
	}
}

// replanOnce runs one drift check; on drift it warm re-solves from the
// current plan and swaps in the result only if the independent KKT
// certificate verifies.
func (as *accessServer) replanOnce(ctx context.Context) {
	as.mu.Lock()
	if !as.ready {
		as.mu.Unlock()
		return
	}
	t := as.now()
	if t < as.lastT {
		t = as.lastT
	}
	rates := as.tracker.Rates(t)
	planned := append([]float64(nil), as.plannedRates...)
	prev := append([]float64(nil), as.x...)
	epoch := as.epoch
	as.mu.Unlock()

	lambda := 0.0
	drifted := false
	for i := range rates {
		lambda += rates[i]
		if estimate.DriftExceeds(planned[i], rates[i], as.opts.drift) {
			drifted = true
		}
	}
	if !drifted || lambda <= 1e-3 {
		return
	}
	alive := make([]bool, as.n)
	for i := range alive {
		alive[i] = true
	}
	pr, err := as.replan.Replan(ctx, rates, prev, alive)
	switch {
	case err != nil:
		as.replansRej.Inc()
		as.obs.RecoveryEvent(as.node, epoch, "serve-replan-error", err.Error())
	case !pr.Certified:
		as.replansRej.Inc()
		as.obs.RecoveryEvent(as.node, epoch, "serve-replan-uncertified", "KKT certificate failed; keeping plan")
	default:
		as.mu.Lock()
		as.epoch++
		as.x = pr.X
		as.plannedRates = rates
		newEpoch := as.epoch
		as.mu.Unlock()
		as.replansOK.Inc()
		as.epochGauge.Set(float64(newEpoch))
		as.obs.RecoveryEvent(as.node, newEpoch, "serve-replan-accepted",
			fmt.Sprintf("lambda=%.4g iters=%d fellback=%v", pr.Lambda, pr.Iterations, pr.FellBack))
	}
}
