package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"filealloc/internal/metrics"
)

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck // test fixture
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// TestMetricsMux serves the observability mux over httptest and checks
// each mounted surface: Prometheus text on /metrics, the liveness JSON on
// /healthz, and the pprof index and cmdline profiles.
func TestMetricsMux(t *testing.T) {
	reg := metrics.New()
	reg.Counter("fap_test_total", "a test counter").Inc()
	srv := httptest.NewServer(metricsMux(reg, 3))
	defer srv.Close()

	code, ctype, body := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "fap_test_total 1") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, ctype, body = getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/healthz content-type = %q", ctype)
	}
	var health struct {
		Status string `json:"status"`
		Node   int    `json:"node"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz body %q: %v", body, err)
	}
	if health.Status != "ok" || health.Node != 3 {
		t.Errorf("/healthz = %+v", health)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/goroutine?debug=1"} {
		code, _, _ := getBody(t, srv.URL+path)
		if code != http.StatusOK {
			t.Errorf("%s status = %d", path, code)
		}
	}
}

// TestRunClusterWithMetricsAddr drives a 3-node cluster with node 0
// exporting metrics and scrapes the live server end to end. Node 0 is
// started alone first: its agent blocks dialing the peers, which holds
// the observability server open for a deterministic scrape window.
func TestRunClusterWithMetricsAddr(t *testing.T) {
	addrs := "127.0.0.1:17661,127.0.0.1:17662,127.0.0.1:17664"
	metricsAddr := "127.0.0.1:17663"
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 3)
	errs := make([]error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = run([]string{
			"-id", "0", "-addrs", addrs, "-init", "1,0,0",
			"-round-timeout", "10s", "-metrics-addr", metricsAddr,
		}, &outs[0], nil)
	}()

	// Wait for the observability server to come up, then scrape it while
	// node 0 is still waiting for its peer.
	var live bool
	for i := 0; i < 100 && !live; i++ {
		if resp, err := http.Get("http://" + metricsAddr + "/healthz"); err == nil {
			resp.Body.Close() //nolint:errcheck // test fixture
			live = resp.StatusCode == http.StatusOK
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !live {
		t.Fatal("observability server never came up on " + metricsAddr)
	}
	code, ctype, _ := getBody(t, "http://"+metricsAddr+"/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("live /metrics scrape: status = %d, content-type = %q", code, ctype)
	}

	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-id", string(rune('0' + i)), "-addrs", addrs, "-init", "1,0,0",
				"-round-timeout", "10s",
			}, &outs[i], nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	var res result
	if err := json.Unmarshal([]byte(outs[0].String()), &res); err != nil {
		t.Fatalf("node 0 output %q: %v", outs[0].String(), err)
	}
	if !res.Converged || res.Messages == 0 {
		t.Errorf("node 0: converged=%t messages=%d", res.Converged, res.Messages)
	}
}
