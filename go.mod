module filealloc

go 1.22
